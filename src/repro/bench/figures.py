"""Experiment drivers: one function per table/figure of the paper.

Every driver returns a list of row dicts (one row per suite matrix, or per
matrix × variant) so it can be rendered by :mod:`repro.bench.reporting`,
consumed by the pytest-benchmark modules under ``benchmarks/`` and asserted
on by the integration tests.  EXPERIMENTS.md records the measured outcomes
against the paper's numbers.

Variant naming follows the paper's legends:

* Figure 6 (triangular solve, GFLOP/s): ``eigen``, ``sympiler_vs_block``,
  ``sympiler_vs_vi``, ``sympiler_full`` (VS-Block + VI-Prune + low-level).
* Figure 7 (Cholesky, GFLOP/s): ``eigen_numeric``, ``cholmod_numeric``,
  ``sympiler_vs_block``, ``sympiler_full``.
* Figures 8/9 (accumulated symbolic + numeric, normalized to Eigen).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.cholmod_like import cholmod_like_numeric, cholmod_like_symbolic
from repro.baselines.eigen_like import (
    eigen_like_numeric,
    eigen_like_symbolic,
    eigen_like_trisolve,
)
from repro.bench.metrics import gflops_rate, time_callable
from repro.bench.reporting import geometric_mean
from repro.bench.suite import SuiteEntry, build_suite, load_suite_matrix
from repro.compiler.options import SympilerOptions
from repro.compiler.sympiler import Sympiler
from repro.kernels.cholesky import cholesky_supernodal
from repro.kernels.flops import cholesky_flops, triangular_solve_flops
from repro.kernels.triangular import trisolve_naive
from repro.sparse.generators import sparse_rhs, unsymmetric_diag_dominant
from repro.symbolic.inspector import CholeskyInspector
from repro.symbolic.reach import reach_set_sorted

__all__ = [
    "table2_suite_listing",
    "fig6_triangular_performance",
    "fig7_cholesky_performance",
    "fig8_triangular_accumulated",
    "fig9_cholesky_accumulated",
    "intro_triangular_speedups",
    "overhead_report",
    "ldlt_performance",
    "lu_performance",
    "batched_throughput",
    "pcg_performance",
    "serving_throughput",
    "wavefront_execution",
    "frontend_specialization",
    "observe_overhead",
]

#: RHS fill used for the triangular-solve experiments (< 5 %, §4.2).
RHS_DENSITY = 0.02


# --------------------------------------------------------------------------- #
# Shared per-matrix preparation
# --------------------------------------------------------------------------- #
class PreparedMatrix:
    """Cached artefacts for one suite entry (matrix, factor, RHS)."""

    def __init__(self, entry: SuiteEntry, *, rhs_density: float = RHS_DENSITY, backend: str = "python") -> None:
        self.entry = entry
        self.backend = backend
        self.A = load_suite_matrix(entry)
        self.inspection = CholeskyInspector().inspect(self.A)
        self.L = cholesky_supernodal(self.A, self.inspection)
        self.b = sparse_rhs(self.A.n, density=rhs_density, seed=1000 + entry.problem_id)
        self.rhs_pattern = np.nonzero(self.b)[0]

    def options(self, **overrides) -> SympilerOptions:
        """Sympiler options bound to the selected backend."""
        return SympilerOptions(backend=self.backend, **overrides)


_PREPARED_CACHE: Dict[str, PreparedMatrix] = {}


def prepare(entry: SuiteEntry, *, backend: str = "python") -> PreparedMatrix:
    """Build (or fetch from cache) the prepared artefacts of a suite entry."""
    key = f"{entry.name}:{backend}"
    if key not in _PREPARED_CACHE:
        _PREPARED_CACHE[key] = PreparedMatrix(entry, backend=backend)
    return _PREPARED_CACHE[key]


def _entries(suite: Optional[Sequence[SuiteEntry]]) -> List[SuiteEntry]:
    return list(suite) if suite is not None else build_suite()


# --------------------------------------------------------------------------- #
# Table 2
# --------------------------------------------------------------------------- #
def table2_suite_listing(suite: Optional[Sequence[SuiteEntry]] = None) -> List[Dict[str, object]]:
    """Table 2: the matrix suite with order and nonzero counts."""
    rows: List[Dict[str, object]] = []
    for entry in _entries(suite):
        A = load_suite_matrix(entry)
        rows.append(
            {
                "problem_id": entry.problem_id,
                "name": entry.name,
                "stands_in_for": entry.stands_in_for,
                "n": A.n,
                "nnz_A": A.nnz,
                "ordering": entry.ordering,
                "domain": entry.domain,
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Figure 6: triangular solve performance
# --------------------------------------------------------------------------- #
def fig6_triangular_performance(
    suite: Optional[Sequence[SuiteEntry]] = None,
    *,
    repeats: int = 3,
    backend: str = "python",
) -> List[Dict[str, object]]:
    """Figure 6: triangular-solve GFLOP/s, Sympiler variants vs. Eigen."""
    rows: List[Dict[str, object]] = []
    sym = Sympiler()
    for entry in _entries(suite):
        prep = prepare(entry, backend=backend)
        L, b, rhs = prep.L, prep.b, prep.rhs_pattern
        # Useful FLOPs of the solve: every variant performs (at least) the work
        # of the reach-set columns, so all GFLOP/s figures use this count.
        flops = triangular_solve_flops(L, reach_set_sorted(L, rhs))

        eigen_seconds, x_ref = time_callable(lambda: eigen_like_trisolve(L, b), repeats=repeats)

        variants = {
            "sympiler_vs_block": prep.options(enable_vi_prune=False, enable_low_level=False),
            "sympiler_vs_vi": prep.options(enable_low_level=False),
            "sympiler_full": prep.options(),
        }
        row: Dict[str, object] = {
            "problem_id": entry.problem_id,
            "name": entry.name,
            "n": L.n,
            "nnz_L": L.nnz,
            "reach_size": 0,
            "eigen_gflops": gflops_rate(flops, eigen_seconds),
            "eigen_seconds": eigen_seconds,
        }
        for vname, opts in variants.items():
            compiled = sym.compile_triangular_solve(L, rhs_pattern=rhs, options=opts)
            row["reach_size"] = compiled.reach_size
            seconds, x = time_callable(lambda: compiled.solve(L, b), repeats=repeats)
            if not np.allclose(x, x_ref, atol=1e-8):
                raise AssertionError(f"variant {vname} produced a wrong solution on {entry.name}")
            row[f"{vname}_gflops"] = gflops_rate(flops, seconds)
            row[f"{vname}_seconds"] = seconds
            row[f"{vname}_speedup_vs_eigen"] = eigen_seconds / seconds
        rows.append(row)
    speedups = [r["sympiler_full_speedup_vs_eigen"] for r in rows]
    if speedups:
        rows.append(
            {
                "problem_id": "-",
                "name": "geomean",
                "n": "-",
                "nnz_L": "-",
                "reach_size": "-",
                "eigen_gflops": "-",
                "eigen_seconds": "-",
                "sympiler_full_speedup_vs_eigen": geometric_mean(speedups),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Figure 7: Cholesky performance
# --------------------------------------------------------------------------- #
def fig7_cholesky_performance(
    suite: Optional[Sequence[SuiteEntry]] = None,
    *,
    repeats: int = 2,
    backend: str = "python",
) -> List[Dict[str, object]]:
    """Figure 7: Cholesky numeric GFLOP/s — Eigen, CHOLMOD and Sympiler."""
    rows: List[Dict[str, object]] = []
    sym = Sympiler()
    for entry in _entries(suite):
        prep = prepare(entry, backend=backend)
        A = prep.A
        flops = cholesky_flops(prep.inspection.l_col_counts)
        l_ref = prep.L.to_dense()

        eigen_sym = eigen_like_symbolic(A)
        eigen_seconds, eigen_L = time_callable(
            lambda: eigen_like_numeric(A, eigen_sym), repeats=repeats
        )
        cholmod_sym = cholmod_like_symbolic(A)
        cholmod_seconds, cholmod_L = time_callable(
            lambda: cholmod_like_numeric(A, cholmod_sym), repeats=repeats
        )
        if not np.allclose(eigen_L.to_dense(), l_ref, atol=1e-8):
            raise AssertionError(f"Eigen-like factor mismatch on {entry.name}")
        if not np.allclose(cholmod_L.to_dense(), l_ref, atol=1e-8):
            raise AssertionError(f"CHOLMOD-like factor mismatch on {entry.name}")

        row: Dict[str, object] = {
            "problem_id": entry.problem_id,
            "name": entry.name,
            "n": A.n,
            "nnz_L": prep.inspection.factor_nnz,
            "eigen_gflops": gflops_rate(flops, eigen_seconds),
            "cholmod_gflops": gflops_rate(flops, cholmod_seconds),
            "eigen_seconds": eigen_seconds,
            "cholmod_seconds": cholmod_seconds,
        }
        variants = {
            "sympiler_vs_block": prep.options(enable_low_level=False),
            "sympiler_full": prep.options(),
        }
        for vname, opts in variants.items():
            compiled = sym.compile_cholesky(A, options=opts)
            seconds, L = time_callable(lambda: compiled.factorize(A), repeats=repeats)
            if not np.allclose(L.to_dense(), l_ref, atol=1e-8):
                raise AssertionError(f"variant {vname} factor mismatch on {entry.name}")
            row[f"{vname}_gflops"] = gflops_rate(flops, seconds)
            row[f"{vname}_seconds"] = seconds
        row["sympiler_speedup_vs_eigen"] = eigen_seconds / row["sympiler_full_seconds"]
        row["sympiler_speedup_vs_cholmod"] = cholmod_seconds / row["sympiler_full_seconds"]
        rows.append(row)
    if rows:
        rows.append(
            {
                "problem_id": "-",
                "name": "geomean",
                "n": "-",
                "nnz_L": "-",
                "sympiler_speedup_vs_eigen": geometric_mean(
                    [r["sympiler_speedup_vs_eigen"] for r in rows]
                ),
                "sympiler_speedup_vs_cholmod": geometric_mean(
                    [r["sympiler_speedup_vs_cholmod"] for r in rows]
                ),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Figure 8: triangular solve, accumulated symbolic + numeric
# --------------------------------------------------------------------------- #
def fig8_triangular_accumulated(
    suite: Optional[Sequence[SuiteEntry]] = None,
    *,
    repeats: int = 3,
    backend: str = "python",
) -> List[Dict[str, object]]:
    """Figure 8: Sympiler symbolic+numeric time normalized to Eigen's solve."""
    rows: List[Dict[str, object]] = []
    sym = Sympiler()
    for entry in _entries(suite):
        prep = prepare(entry, backend=backend)
        L, b, rhs = prep.L, prep.b, prep.rhs_pattern
        eigen_seconds, x_ref = time_callable(lambda: eigen_like_trisolve(L, b), repeats=repeats)
        compiled = sym.compile_triangular_solve(L, rhs_pattern=rhs, options=prep.options())
        numeric_seconds, x = time_callable(lambda: compiled.solve(L, b), repeats=repeats)
        if not np.allclose(x, x_ref, atol=1e-8):
            raise AssertionError(f"Sympiler trisolve mismatch on {entry.name}")
        symbolic_seconds = compiled.timings.inspection + compiled.timings.transformation
        codegen_seconds = compiled.timings.codegen + compiled.timings.compile
        rows.append(
            {
                "problem_id": entry.problem_id,
                "name": entry.name,
                "eigen_seconds": eigen_seconds,
                "sympiler_numeric_seconds": numeric_seconds,
                "sympiler_symbolic_seconds": symbolic_seconds,
                "sympiler_codegen_seconds": codegen_seconds,
                "sympiler_numeric_normalized": numeric_seconds / eigen_seconds,
                "sympiler_accumulated_normalized": (numeric_seconds + symbolic_seconds)
                / eigen_seconds,
                "codegen_over_numeric": codegen_seconds / max(numeric_seconds, 1e-12),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Figure 9: Cholesky, accumulated symbolic + numeric
# --------------------------------------------------------------------------- #
def fig9_cholesky_accumulated(
    suite: Optional[Sequence[SuiteEntry]] = None,
    *,
    repeats: int = 2,
    backend: str = "python",
) -> List[Dict[str, object]]:
    """Figure 9: symbolic+numeric time of all three systems normalized to Eigen."""
    rows: List[Dict[str, object]] = []
    sym = Sympiler()
    for entry in _entries(suite):
        prep = prepare(entry, backend=backend)
        A = prep.A
        eigen_sym = eigen_like_symbolic(A)
        eigen_numeric_seconds, _ = time_callable(
            lambda: eigen_like_numeric(A, eigen_sym), repeats=repeats
        )
        eigen_total = eigen_sym.seconds + eigen_numeric_seconds
        cholmod_sym = cholmod_like_symbolic(A)
        cholmod_numeric_seconds, _ = time_callable(
            lambda: cholmod_like_numeric(A, cholmod_sym), repeats=repeats
        )
        compiled = sym.compile_cholesky(A, options=prep.options())
        sympiler_numeric_seconds, _ = time_callable(
            lambda: compiled.factorize(A), repeats=repeats
        )
        sympiler_symbolic = compiled.timings.inspection + compiled.timings.transformation
        sympiler_codegen = compiled.timings.codegen + compiled.timings.compile
        rows.append(
            {
                "problem_id": entry.problem_id,
                "name": entry.name,
                "eigen_symbolic_seconds": eigen_sym.seconds,
                "eigen_numeric_seconds": eigen_numeric_seconds,
                "cholmod_symbolic_seconds": cholmod_sym.seconds,
                "cholmod_numeric_seconds": cholmod_numeric_seconds,
                "sympiler_symbolic_seconds": sympiler_symbolic,
                "sympiler_numeric_seconds": sympiler_numeric_seconds,
                "sympiler_codegen_seconds": sympiler_codegen,
                "eigen_total_normalized": 1.0,
                "cholmod_total_normalized": (cholmod_sym.seconds + cholmod_numeric_seconds)
                / eigen_total,
                "sympiler_total_normalized": (sympiler_symbolic + sympiler_numeric_seconds)
                / eigen_total,
                "codegen_over_numeric": sympiler_codegen
                / max(sympiler_numeric_seconds, 1e-12),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# §1.1 intro speedups (vs. naive and library triangular solve)
# --------------------------------------------------------------------------- #
def intro_triangular_speedups(
    suite: Optional[Sequence[SuiteEntry]] = None,
    *,
    repeats: int = 3,
    backend: str = "python",
) -> List[Dict[str, object]]:
    """§1.1: Sympiler trisolve speedup over Fig. 1b (naive) and Fig. 1c (library)."""
    rows: List[Dict[str, object]] = []
    sym = Sympiler()
    for entry in _entries(suite):
        prep = prepare(entry, backend=backend)
        L, b, rhs = prep.L, prep.b, prep.rhs_pattern
        naive_seconds, x_ref = time_callable(lambda: trisolve_naive(L, b), repeats=repeats)
        library_seconds, _ = time_callable(lambda: eigen_like_trisolve(L, b), repeats=repeats)
        compiled = sym.compile_triangular_solve(L, rhs_pattern=rhs, options=prep.options())
        sympiler_seconds, x = time_callable(lambda: compiled.solve(L, b), repeats=repeats)
        if not np.allclose(x, x_ref, atol=1e-8):
            raise AssertionError(f"Sympiler trisolve mismatch on {entry.name}")
        rows.append(
            {
                "problem_id": entry.problem_id,
                "name": entry.name,
                "reach_size": compiled.reach_size,
                "n": L.n,
                "speedup_vs_naive": naive_seconds / sympiler_seconds,
                "speedup_vs_library": library_seconds / sympiler_seconds,
            }
        )
    if rows:
        rows.append(
            {
                "problem_id": "-",
                "name": "geomean",
                "reach_size": "-",
                "n": "-",
                "speedup_vs_naive": geometric_mean([r["speedup_vs_naive"] for r in rows]),
                "speedup_vs_library": geometric_mean([r["speedup_vs_library"] for r in rows]),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# LDL^T: the registry-extension kernel
# --------------------------------------------------------------------------- #
def ldlt_performance(
    suite: Optional[Sequence[SuiteEntry]] = None,
    *,
    repeats: int = 2,
    backend: str = "python",
) -> List[Dict[str, object]]:
    """LDLᵀ vs. Cholesky numeric factorization on the suite matrices.

    Exercises the kernel-registry extension end to end: both factorizations
    are compiled through the generic ``Sympiler.compile`` path, the LDLᵀ
    result is validated by reconstruction (``L D Lᵀ = A``), and a repeat
    compile of the same pattern must be an artifact-cache hit.
    """
    rows: List[Dict[str, object]] = []
    sym = Sympiler()
    for entry in _entries(suite):
        prep = prepare(entry, backend=backend)
        A = prep.A
        flops = cholesky_flops(prep.inspection.l_col_counts)

        chol = sym.compile("cholesky", A, options=prep.options())
        chol_seconds, _ = time_callable(lambda: chol.factorize(A), repeats=repeats)
        ldlt = sym.compile("ldlt", A, options=prep.options())
        ldlt_seconds, fac = time_callable(lambda: ldlt.factorize(A), repeats=repeats)
        if not np.allclose(fac.reconstruct_dense(), A.to_dense(), atol=1e-8):
            raise AssertionError(f"LDL^T reconstruction mismatch on {entry.name}")

        hits_before = sym.cache.stats.hits
        recompiled = sym.compile("ldlt", A, options=prep.options())
        cache_hit = recompiled is ldlt and sym.cache.stats.hits == hits_before + 1

        rows.append(
            {
                "problem_id": entry.problem_id,
                "name": entry.name,
                "n": A.n,
                "nnz_L": ldlt.factor_nnz,
                "cholesky_gflops": gflops_rate(flops, chol_seconds),
                "ldlt_gflops": gflops_rate(flops, ldlt_seconds),
                "cholesky_seconds": chol_seconds,
                "ldlt_seconds": ldlt_seconds,
                "ldlt_over_cholesky": ldlt_seconds / max(chol_seconds, 1e-12),
                "recompile_cache_hit": cache_hit,
                "symbolic_seconds": ldlt.timings.inspection + ldlt.timings.transformation,
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# LU: the unsymmetric registry-extension kernel
# --------------------------------------------------------------------------- #
def lu_performance(
    suite: Optional[Sequence[SuiteEntry]] = None,
    *,
    repeats: int = 2,
    backend: str = "python",
) -> List[Dict[str, object]]:
    """LU numeric factorization on unsymmetric diagonally dominant matrices.

    The suite only fixes the problem *sizes*: each entry is paired with an
    unsymmetric diagonally dominant Jacobian analogue of the same order from
    :func:`unsymmetric_diag_dominant`.  Exercises the kernel-registry
    extension end to end — the LU kernel is compiled through the generic
    ``Sympiler.compile`` path, the result is validated by reconstruction
    (``L U = A``) and against ``scipy.sparse.linalg.splu``'s solution, and a
    repeat compile of the same pattern must be an artifact-cache hit.
    """
    rows: List[Dict[str, object]] = []
    sym = Sympiler()
    for entry in _entries(suite):
        # Only the problem size is taken from the suite entry; skip its
        # fill-reducing ordering (permute=False) since the matrix is rebuilt.
        n = load_suite_matrix(entry, permute=False, cache=False).n
        A = unsymmetric_diag_dominant(n, seed=700 + entry.problem_id)
        options = SympilerOptions(backend=backend)

        compiled = sym.compile("lu", A, options=options)
        lu_seconds, fac = time_callable(lambda: compiled.factorize(A), repeats=repeats)
        if not np.allclose(fac.reconstruct_dense(), A.to_dense(), atol=1e-8):
            raise AssertionError(f"LU reconstruction mismatch on {entry.name}")

        b = np.arange(1.0, n + 1.0) / n
        x = fac.solve(b)
        row: Dict[str, object] = {
            "problem_id": entry.problem_id,
            "name": entry.name,
            "n": n,
            "nnz_A": A.nnz,
            "nnz_LU": compiled.factor_nnz,
            "lu_seconds": lu_seconds,
            "residual": float(np.linalg.norm(A.matvec(x) - b)),
            "symbolic_seconds": compiled.timings.inspection + compiled.timings.transformation,
        }
        try:
            from scipy.sparse.linalg import splu
        except ImportError:  # pragma: no cover - scipy is an optional baseline
            row["splu_seconds"] = float("nan")
        else:
            A_scipy = A.to_scipy().tocsc()
            splu_seconds, lu_ref = time_callable(lambda: splu(A_scipy), repeats=repeats)
            if not np.allclose(lu_ref.solve(b), x, atol=1e-8):
                raise AssertionError(f"LU solution differs from splu on {entry.name}")
            row["splu_seconds"] = splu_seconds
            row["lu_over_splu"] = lu_seconds / max(splu_seconds, 1e-12)

        hits_before = sym.cache.stats.hits
        recompiled = sym.compile("lu", A, options=options)
        row["recompile_cache_hit"] = bool(
            recompiled is compiled and sym.cache.stats.hits == hits_before + 1
        )
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# PCG: IC(0)-preconditioned conjugate gradient (incomplete-kernel extension)
# --------------------------------------------------------------------------- #
def pcg_performance(
    suite: Optional[Sequence[SuiteEntry]] = None,
    *,
    repeats: int = 2,
    backend: str = "python",
    tol: float = 1e-8,
) -> List[Dict[str, object]]:
    """IC(0)-preconditioned CG: compiled vs. interpreted preconditioner vs. scipy.

    Exercises the incomplete-kernel registry extension end to end on the SPD
    suite matrices: the compiled path factors through the generated ``ic0``
    kernel, the interpreted path through the NumPy reference loop (on the
    python backend the two runs are asserted **bitwise identical** — same
    iterates, same residual history), and ``scipy.sparse.linalg.cg`` provides
    the library baseline at the same tolerance.  Kernels are compiled during
    a warm-up solve, so the timed runs measure the iteration loop the way the
    paper's §4.3 amortization argument frames it.
    """
    from repro.solvers.cg import preconditioned_conjugate_gradient

    rows: List[Dict[str, object]] = []
    for entry in _entries(suite):
        A = load_suite_matrix(entry)
        b = A.matvec(np.arange(1.0, A.n + 1.0) / A.n)  # deterministic RHS
        options = SympilerOptions(backend=backend)

        def run(preconditioner: str):
            return preconditioned_conjugate_gradient(
                A, b, tol=tol, preconditioner=preconditioner, options=options
            )

        compiled_seconds, compiled = time_callable(
            lambda: run("compiled"), repeats=repeats
        )
        interpreted_seconds, interpreted = time_callable(
            lambda: run("interpreted"), repeats=repeats
        )
        if not compiled.converged:
            raise AssertionError(f"compiled-IC0 PCG did not converge on {entry.name}")
        bitwise = bool(
            np.array_equal(compiled.x, interpreted.x)
            and compiled.residual_norms == interpreted.residual_norms
        )
        if backend == "python" and not bitwise:
            raise AssertionError(
                f"compiled and interpreted IC0 PCG diverge on {entry.name}"
            )
        plain = preconditioned_conjugate_gradient(
            A, b, tol=tol, use_preconditioner=False, max_iterations=10 * A.n
        )
        row: Dict[str, object] = {
            "problem_id": entry.problem_id,
            "name": entry.name,
            "n": A.n,
            "nnz_A": A.nnz,
            "iterations": compiled.iterations,
            "plain_cg_iterations": plain.iterations,
            "converged": compiled.converged,
            "final_residual": compiled.final_residual,
            "bitwise_identical": bitwise,
            "compiled_seconds": compiled_seconds,
            "interpreted_seconds": interpreted_seconds,
            "interpreted_over_compiled": interpreted_seconds
            / max(compiled_seconds, 1e-12),
        }
        try:
            from scipy.sparse.linalg import cg as scipy_cg
        except ImportError:  # pragma: no cover - scipy is an optional baseline
            row["scipy_cg_seconds"] = float("nan")
        else:
            A_scipy = A.to_scipy().tocsc()
            counter = {"iterations": 0}

            def count(_xk):
                counter["iterations"] += 1

            def run_scipy():
                counter["iterations"] = 0
                try:
                    return scipy_cg(A_scipy, b, rtol=tol, callback=count)
                except TypeError:  # pragma: no cover - scipy < 1.12 spelling
                    return scipy_cg(A_scipy, b, tol=tol, callback=count)

            scipy_seconds, (x_scipy, info) = time_callable(run_scipy, repeats=repeats)
            if info == 0 and not np.allclose(x_scipy, compiled.x, atol=1e-5):
                raise AssertionError(f"PCG and scipy cg disagree on {entry.name}")
            row["scipy_cg_seconds"] = scipy_seconds
            row["scipy_cg_iterations"] = counter["iterations"]
            row["speedup_vs_scipy_cg"] = scipy_seconds / max(compiled_seconds, 1e-12)
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Batched numeric runtime: sequential vs. batched throughput
# --------------------------------------------------------------------------- #
def batched_throughput(
    suite: Optional[Sequence[SuiteEntry]] = None,
    *,
    repeats: int = 2,
    backend: str = "python",
    threads: Optional[int] = None,
    batch: int = 16,
) -> List[Dict[str, object]]:
    """Sequential vs. batched numeric factorization over shared-pattern batches.

    For each suite entry an SPD matrix of comparable (floored) size is
    diagonally perturbed into ``batch`` value sets sharing one pattern — the
    parameter-sweep workload the batched runtime serves.  The sequential
    baseline loops the compiled artifact's own entry point; the batched run
    goes through :class:`~repro.runtime.BatchedSolver.factorize_batch` with
    ``threads`` workers (``None`` → the options default, ``0`` → one per
    CPU).  Every batched item is checked **bitwise** against its sequential
    counterpart, and the artifact/disk cache counters are sampled around the
    batched run — ``batch_recompiles`` must stay 0 (batching reuses the one
    compiled kernel), which CI asserts on the emitted JSON.
    """
    import os

    from repro.compiler.codegen.c_backend import (
        CGeneratedModule,
        disk_cache_stats,
    )
    from repro.runtime.facade import BatchedSolver
    from repro.sparse.generators import laplacian_2d
    from repro.sparse.ordering import ordering_by_name

    rows: List[Dict[str, object]] = []
    for entry in _entries(suite):
        A = load_suite_matrix(entry)
        if A.n < 900:
            # Thread-pool overhead would dominate the tiny smoke matrices;
            # stand in a same-class 2-D grid of useful size (deterministic
            # per entry) so the throughput comparison is meaningful.
            side = 30 + 2 * (entry.problem_id % 4)
            grid = laplacian_2d(side, shift=0.1)
            A = ordering_by_name("mindeg")(grid).symmetric_permute(grid)
        options = SympilerOptions(backend=backend)
        if threads is not None:
            options = options.with_updates(num_threads=threads)
        if backend == "python":
            # The stacked batch path mirrors the simplicial kernel; compile
            # that variant so the python backend exercises its vectorized
            # strategy (the sequential baseline uses the same artifact, so
            # the comparison — and the bitwise check — stay apples to apples).
            options = options.with_updates(enable_vs_block=False)
        batched = BatchedSolver(A, ordering="natural", options=options)
        artifact = batched.solver._factorization
        permuted = batched.solver.A_permuted
        diag_positions = np.array(
            [
                permuted.indptr[j]
                + int(np.nonzero(permuted.col_rows(j) == j)[0][0])
                for j in range(permuted.n)
            ]
        )
        value_sets = []
        for b in range(batch):
            data = permuted.data.copy()
            data[diag_positions] *= 1.0 + 0.01 * b  # SPD-preserving sweep
            value_sets.append(data)

        def run_sequential():
            return [
                artifact.factorize_arrays(permuted.indptr, permuted.indices, ax)
                for ax in value_sets
            ]

        seq_seconds, seq_outputs = time_callable(run_sequential, repeats=repeats)

        disk_before = dict(disk_cache_stats().as_dict())
        cache_stats = batched.solver.cache_stats
        misses_before = cache_stats.misses

        def run_batched():
            result = batched.executor.factorize_batch(
                permuted.indptr, permuted.indices, value_sets
            )
            result.raise_first()
            return result

        batch_seconds, batch_result = time_callable(run_batched, repeats=repeats)
        disk_after = dict(disk_cache_stats().as_dict())
        recompiles = (
            (disk_after["compiles"] - disk_before["compiles"])
            + (disk_after["py_writes"] - disk_before["py_writes"])
            + (cache_stats.misses - misses_before)
        )

        bitwise = all(
            _raw_outputs_equal(seq_outputs[b], batch_result.results[b])
            for b in range(batch)
        )
        if not bitwise:
            raise AssertionError(
                f"batched factorization differs from sequential on {entry.name}"
            )
        schedule = artifact.schedule
        rows.append(
            {
                "problem_id": entry.problem_id,
                "name": entry.name,
                "n": A.n,
                "nnz_L": artifact.factor_nnz,
                "backend": backend,
                "backend_effective": (
                    "c" if isinstance(artifact.module, CGeneratedModule) else "python"
                ),
                "mode": batch_result.mode,
                "threads": batched.num_threads,
                "batch": batch,
                "cpu_count": os.cpu_count() or 1,
                "seq_seconds": seq_seconds,
                "batch_seconds": batch_seconds,
                "seq_items_per_second": batch / max(seq_seconds, 1e-12),
                "batched_items_per_second": batch / max(batch_seconds, 1e-12),
                "speedup": seq_seconds / max(batch_seconds, 1e-12),
                "bitwise_identical": bitwise,
                "batch_recompiles": int(recompiles),
                "schedule_levels": schedule.n_levels,
                "schedule_avg_width": schedule.average_width,
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Serving layer: coalesced vs uncoalesced vs naive per-request baselines
# --------------------------------------------------------------------------- #
def serving_throughput(
    suite: Optional[Sequence[SuiteEntry]] = None,
    *,
    backend: str = "python",
    threads: Optional[int] = None,
    requests: int = 48,
    window_seconds: float = 0.05,
    max_batch: int = 16,
) -> List[Dict[str, object]]:
    """Same-pattern request traffic through the solver service.

    For each suite entry, ``requests`` solves (scaled SPD value sets +
    distinct right-hand sides on one pattern) run four ways:

    * ``naive`` — per-request ``scipy.sparse.linalg.spsolve`` (no
      amortization at all: the traffic-scale baseline),
    * ``sequential`` — one :class:`SparseLinearSolver`, factorize + solve
      per request (in-process amortization, the bitwise oracle),
    * ``uncoalesced`` — the service with ``coalesce=False``: every request
      dispatches alone through the full serving path,
    * ``coalesced`` — the service with micro-batching: in-flight
      same-pattern requests share batched factorizations (stacked
      vectorized kernels on the python backend, threaded C kernels).

    The gated metrics are machine-portable: ``coalesced_over_uncoalesced``
    is a same-run ratio (the coalescing win), ``serving_recompiles`` counts
    kernels regenerated under sustained load after warm-up (must be 0),
    ``bitwise_identical`` compares every coalesced solution against the
    sequential oracle bit for bit (python backend), and
    ``reregister_warm`` asserts the evict → re-register path reuses
    generated code from the on-disk cache without recompiling.
    """
    import os

    import scipy.sparse.linalg as spla

    from repro.compiler.codegen.c_backend import disk_cache_stats
    from repro.service.session import SolverService
    from repro.solvers.linear_solver import SparseLinearSolver
    from repro.sparse.generators import laplacian_2d
    from repro.sparse.ordering import ordering_by_name

    rows: List[Dict[str, object]] = []
    for entry in _entries(suite):
        A = load_suite_matrix(entry)
        if A.n < 400:
            # The tiny smoke matrices would hide the dispatch-vs-kernel cost
            # split; stand in a same-class 2-D grid (deterministic per entry).
            side = 22 + 2 * (entry.problem_id % 3)
            grid = laplacian_2d(side, shift=0.1)
            A = ordering_by_name("mindeg")(grid).symmetric_permute(grid)
        options = SympilerOptions(backend=backend)
        if threads is not None:
            options = options.with_updates(num_threads=threads)
        if backend == "python":
            # Compile the simplicial variant so the coalesced path runs the
            # vectorized stacked batch kernel (mirrors the batched bench; the
            # sequential oracle uses the same artifact, keeping the bitwise
            # comparison apples to apples).
            options = options.with_updates(enable_vs_block=False)

        scales = 1.0 + 0.01 * np.arange(requests, dtype=np.float64)
        value_sets = [A.data * s for s in scales]
        rhs_list = [
            np.cos(np.arange(A.n, dtype=np.float64) * 0.01 * (k + 1))
            for k in range(requests)
        ]

        # Naive traffic baseline: refactorize from scratch per request.
        S = A.to_scipy().tocsc()

        def run_naive():
            return [
                spla.spsolve(S * s, b) for s, b in zip(scales, rhs_list)
            ]

        naive_seconds, _ = time_callable(run_naive, repeats=1, warmup=0)

        # Sequential oracle: in-process factor/solve amortization.
        ref = SparseLinearSolver(A, ordering="natural", options=options)

        def run_sequential():
            xs = []
            for values, b in zip(value_sets, rhs_list):
                ref.factorize(A.with_values(values))
                xs.append(ref.solve(b))
            return xs

        seq_seconds, seq_xs = time_callable(run_sequential, repeats=1, warmup=1)

        # Uncoalesced service: the full serving path, one request at a time.
        svc_plain = SolverService(options=options, coalesce=False)
        handle_plain = svc_plain.register_pattern(A)

        def run_uncoalesced():
            return [
                svc_plain.solve(handle_plain, values, b)
                for values, b in zip(value_sets, rhs_list)
            ]

        unco_seconds, _ = time_callable(run_uncoalesced, repeats=1, warmup=1)
        svc_plain.close()

        # Coalesced service: submit everything, let the micro-batcher group.
        svc = SolverService(
            options=options,
            window_seconds=window_seconds,
            max_batch=max_batch,
            max_in_flight=max(4 * requests, 64),
        )
        handle = svc.register_pattern(A)

        def run_coalesced():
            futures = [
                svc.submit(handle, values, b)
                for values, b in zip(value_sets, rhs_list)
            ]
            return [future.result(timeout=120.0) for future in futures]

        run_coalesced()  # warm-up round (also seeds the batch histogram)
        disk_before = disk_cache_stats().as_dict()
        misses_before = svc.stats()["artifact_cache"]["misses"]
        coal_seconds, coal_xs = time_callable(run_coalesced, repeats=1, warmup=0)
        disk_after = disk_cache_stats().as_dict()
        stats = svc.stats()
        recompiles = (
            (disk_after["compiles"] - disk_before["compiles"])
            + (disk_after["py_writes"] - disk_before["py_writes"])
            + (stats["artifact_cache"]["misses"] - misses_before)
        )
        pattern_info = stats["patterns"][handle.handle_id]

        bitwise = all(
            np.array_equal(coal_xs[k], seq_xs[k]) for k in range(requests)
        )
        if backend == "python" and not bitwise:
            raise AssertionError(
                f"coalesced serving results differ from sequential on {entry.name}"
            )

        # Evict → re-register must be a warm, zero-recompile path (the
        # generated code survives on disk; only the pinned artifacts drop).
        svc.evict(handle)
        disk_before_rereg = disk_cache_stats().as_dict()
        handle2 = svc.register_pattern(A)
        disk_after_rereg = disk_cache_stats().as_dict()
        reregister_warm = bool(
            handle2.warm
            and disk_after_rereg["compiles"] == disk_before_rereg["compiles"]
            and disk_after_rereg["py_writes"] == disk_before_rereg["py_writes"]
        )
        svc.close()

        rows.append(
            {
                "problem_id": entry.problem_id,
                "name": entry.name,
                "n": A.n,
                "nnz_L": handle.factor_nnz,
                "backend": backend,
                "backend_effective": pattern_info["backend_effective"],
                "mode": pattern_info["mode"],
                "requests": requests,
                "window_seconds": window_seconds,
                "max_batch": max_batch,
                "cpu_count": os.cpu_count() or 1,
                "naive_scipy_seconds": naive_seconds,
                "sequential_seconds": seq_seconds,
                "uncoalesced_seconds": unco_seconds,
                "coalesced_seconds": coal_seconds,
                "coalesced_over_uncoalesced": unco_seconds / max(coal_seconds, 1e-12),
                "speedup_vs_scipy": naive_seconds / max(coal_seconds, 1e-12),
                "requests_per_second": requests / max(coal_seconds, 1e-12),
                "coalescing_ratio": stats["coalescing_ratio"],
                "max_batch_observed": stats["max_batch_size"],
                "p95_latency_seconds": stats["latency"]["p95_seconds"],
                "serving_recompiles": int(recompiles),
                "bitwise_identical": bitwise,
                "reregister_warm": reregister_warm,
            }
        )
    return rows


def fleet_throughput(
    suite: Optional[Sequence[SuiteEntry]] = None,
    *,
    backend: str = "python",
    requests: int = 36,
    window_ms: float = 5.0,
    max_batch: int = 16,
) -> List[Dict[str, object]]:
    """The sharded fleet and the pipelined v2 wire protocol, end to end.

    One row (``fleet_mixed``) over a mixed-pattern request stream, measuring
    the two deliverables of the fleet redesign as same-run ratios plus the
    deterministic failover guarantees:

    * ``two_shards_over_one`` — aggregate pipelined throughput of a 2-shard
      fleet over a 1-shard fleet on the identical stream.  Tracks the
      runner's core count (≈1.0 on one core, >1.3 with two-plus); the
      absolute multi-core assertion lives in the CI fleet step, the gate
      here compares against the runner's own committed baseline.
    * ``pipelined_over_roundtrip`` — protocol v2 (submit-all, one
      connection, id-tagged responses) over protocol v1 (lock-step
      round-trips) against the *same* server.  Wins even on one core: the
      sync v1 client pays the coalescing window per request while the
      pipelined client fills whole batches.
    * ``v1_compat`` — a pinned-v1 client round-trips against the v2 server.
    * ``all_complete`` / ``solutions_ok`` — every request in the
      kill-a-shard-mid-stream fleet run completes and verifies against the
      local reference solver.
    * ``reregister_warm`` / ``failover_recompiles`` — the replacement shard
      re-registers its patterns warm from the shared disk cache (zero cold
      recompiles, from the fleet's own counters).
    """
    import os
    import tempfile

    from repro.service.client import ServiceClient
    from repro.service.fleet import ShardFleet
    from repro.service.session import SolverService
    from repro.service.wire import serve_background
    from repro.solvers.linear_solver import SparseLinearSolver
    from repro.sparse.generators import fem_stencil_2d, laplacian_2d
    from repro.sparse.ordering import ordering_by_name

    options = SympilerOptions(backend=backend)
    if backend == "python":
        options = options.with_updates(enable_vs_block=False)

    # A deterministic mixed-pattern workload: three distinct sparsity
    # patterns so the router actually spreads load across shards.
    mats = {}
    for i, side in enumerate((22, 24, 26)):
        grid = (
            laplacian_2d(side, shift=0.1)
            if i != 1
            else fem_stencil_2d(side - 6, shift=0.2)
        )
        mats[f"p{i}"] = ordering_by_name("mindeg")(grid).symmetric_permute(grid)
    names = sorted(mats)
    refs = {
        k: SparseLinearSolver(A, ordering="natural", options=options)
        for k, A in mats.items()
    }

    def stream(k: int):
        """Request ``k`` of the stream: (pattern key, values, rhs, oracle)."""
        name = names[k % len(names)]
        A = mats[name]
        scale = 1.0 + 0.01 * (k + 1)
        rhs = np.cos(np.arange(A.n, dtype=np.float64) * 0.01 * (k + 1))
        return name, A.data * scale, rhs, refs[name].solve(rhs) / scale

    def run_fleet(fleet, handles, lo: int, hi: int):
        futures = []
        for k in range(lo, hi):
            name, values, rhs, _ = stream(k)
            futures.append(fleet.submit(handles[name], values, rhs))
        return [f.result(timeout=120.0) for f in futures]

    with tempfile.TemporaryDirectory(prefix="repro-fleet-bench-") as cache_dir:
        # --- 1 shard vs 2 shards: same stream, same shared disk cache ----
        shard_seconds = {}
        for shards in (1, 2):
            with ShardFleet(
                shards,
                backend=backend,
                cache_dir=cache_dir,
                window_ms=window_ms,
                max_batch=max_batch,
                max_in_flight=max(4 * requests, 64),
            ) as fleet:
                handles = {
                    k: fleet.register_pattern(A, options=options)
                    for k, A in mats.items()
                }
                run_fleet(fleet, handles, 0, requests)  # warm-up round
                seconds, _ = time_callable(
                    lambda: run_fleet(fleet, handles, 0, requests),
                    repeats=1,
                    warmup=0,
                )
                shard_seconds[shards] = seconds

        # --- failover mid-stream on a fresh 2-shard fleet ----------------
        with ShardFleet(
            2,
            backend=backend,
            cache_dir=cache_dir,
            window_ms=window_ms,
            max_batch=max_batch,
            max_in_flight=max(4 * requests, 64),
        ) as fleet:
            handles = {
                k: fleet.register_pattern(A, options=options)
                for k, A in mats.items()
            }
            half = requests // 2
            xs = run_fleet(fleet, handles, 0, half)
            victim = int(
                next(
                    slot
                    for slot, s in fleet.stats()["per_shard"].items()
                    if s.get("registered_patterns", 0) > 0
                )
            )
            fleet.kill_shard(victim)
            xs += run_fleet(fleet, handles, half, requests)
            counters = dict(fleet.counters)

        all_complete = len(xs) == requests
        solutions_ok = all_complete and all(
            np.allclose(x, stream(k)[3], atol=1e-8) for k, x in enumerate(xs)
        )
        reregister_warm = bool(
            counters["shard_deaths"] == 1
            and counters["reregisters"] >= 1
            and counters["warm_reregisters"] == counters["reregisters"]
        )

    # --- pipelined v2 vs lock-step v1 against one server -----------------
    A = mats[names[0]]
    ref = refs[names[0]]
    wire_requests = max(12, requests // 2)
    scales = 1.0 + 0.01 * np.arange(1, wire_requests + 1)
    rhs_list = [
        np.cos(np.arange(A.n, dtype=np.float64) * 0.02 * (k + 1))
        for k in range(wire_requests)
    ]
    service = SolverService(
        options=options,
        window_seconds=window_ms / 1000.0,
        max_batch=max_batch,
        max_in_flight=max(4 * wire_requests, 64),
    )
    server, thread = serve_background(service)
    try:
        address = server.server_address
        with ServiceClient(address, protocol=2) as c2:
            handle = c2.register_pattern(A, options=options)

            def run_pipelined():
                futures = [
                    c2.submit(handle, A.data * s, b)
                    for s, b in zip(scales, rhs_list)
                ]
                return [f.result(timeout=120.0) for f in futures]

            pipe_seconds, _ = time_callable(run_pipelined, repeats=1, warmup=1)
        with ServiceClient(address, protocol=1) as c1:
            x1 = c1.solve(handle, A.data * scales[0], rhs_list[0])
            v1_compat = bool(
                c1.protocol == 1
                and np.allclose(x1, ref.solve(rhs_list[0]) / scales[0], atol=1e-8)
            )

            def run_roundtrip():
                return [
                    c1.solve(handle, A.data * s, b)
                    for s, b in zip(scales, rhs_list)
                ]

            roundtrip_seconds, _ = time_callable(run_roundtrip, repeats=1, warmup=1)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
        service.close()

    return [
        {
            "name": "fleet_mixed",
            "backend": backend,
            "patterns": len(mats),
            "requests": requests,
            "window_ms": window_ms,
            "max_batch": max_batch,
            "cpu_count": os.cpu_count() or 1,
            "one_shard_seconds": shard_seconds[1],
            "two_shard_seconds": shard_seconds[2],
            "two_shards_over_one": shard_seconds[1] / max(shard_seconds[2], 1e-12),
            "pipelined_seconds": pipe_seconds,
            "roundtrip_seconds": roundtrip_seconds,
            "pipelined_over_roundtrip": roundtrip_seconds / max(pipe_seconds, 1e-12),
            "v1_compat": v1_compat,
            "all_complete": all_complete,
            "solutions_ok": solutions_ok,
            "reregister_warm": reregister_warm,
            "failover_recompiles": int(counters["cold_reregisters"]),
            "shard_deaths": int(counters["shard_deaths"]),
        }
    ]


def _raw_outputs_equal(a, b) -> bool:
    """Bitwise comparison of raw kernel outputs (arrays or array tuples)."""
    if isinstance(a, tuple) or isinstance(b, tuple):
        return (
            isinstance(a, tuple)
            and isinstance(b, tuple)
            and len(a) == len(b)
            and all(np.array_equal(x, y) for x, y in zip(a, b))
        )
    return np.array_equal(a, b)


# --------------------------------------------------------------------------- #
# Wavefront (H-Level) execution: single-solve parallelism inside one kernel
# --------------------------------------------------------------------------- #
def wavefront_execution(
    suite: Optional[Sequence[SuiteEntry]] = None,
    *,
    backend: str = "c",
    threads: Optional[int] = None,
    repeats: int = 5,
) -> List[Dict[str, object]]:
    """Wavefront-compiled single solves vs the serial compiled kernel.

    For each suite entry a wide-level SPD pattern of useful size stands in
    (the smoke matrices are too small for within-kernel parallelism to mean
    anything), the Cholesky + forward-trisolve kernels compile twice — serial
    and ``parallel="wavefront"`` — and one factorize + solve runs both ways:

    * ``bitwise_identical`` — the wavefront outputs equal the serial ones
      bit for bit (levels are antichains; the pull-form trisolve replays the
      serial accumulation order), asserted here and gated in CI,
    * ``speedup_2threads`` — serial seconds over wavefront seconds at a
      pinned 2 threads (machine-dependent magnitude; the committed baseline
      carries this machine's value and the CI smoke step asserts > 1.2 on a
      multi-core runner),
    * ``zero_recompiles`` — a fresh driver re-compiling both variants against
      the warm on-disk cache generates nothing (serial and wavefront
      artifacts key separately and both reload),
    * the final row is a deep-etree chain (tridiagonal) pattern whose
      schedule has no parallelism to mine — ``serial_fallback`` must be True
      (the backend declined wavefront codegen and emitted the serial body).
    """
    import os
    import time as _time

    from repro.compiler.cache import ArtifactCache
    from repro.compiler.codegen.c_backend import disk_cache_stats
    from repro.sparse.generators import laplacian_2d
    from repro.sparse.ordering import ordering_by_name

    serial_options = SympilerOptions(backend=backend, enable_vs_block=False)
    if threads is not None:
        serial_options = serial_options.with_updates(num_threads=threads)
    wavefront_options = serial_options.with_updates(parallel="wavefront")

    def best_of(fn) -> float:
        fn()  # warm-up: page in the shared object, fault in the buffers
        times = []
        for _ in range(repeats):
            t0 = _time.perf_counter()
            fn()
            times.append(_time.perf_counter() - t0)
        return min(times)

    def measure(problem_id: int, name: str, A, *, expect_fallback: bool):
        sym_s = Sympiler(serial_options, cache=ArtifactCache())
        sym_w = Sympiler(wavefront_options, cache=ArtifactCache())
        fact_s = sym_s.compile("cholesky", A)
        fact_w = sym_w.compile("cholesky", A)
        Ap, Ai, Ax = A.indptr, A.indices, A.data
        raw_s = fact_s.factorize_arrays(Ap, Ai, Ax)
        raw_w = fact_w.factorize_arrays(Ap, Ai, Ax, num_threads=2)
        bitwise = _raw_outputs_equal(raw_s, raw_w)
        L = fact_s.assemble_factors(raw_s)
        tri_s = sym_s.compile("triangular-solve", L)
        tri_w = sym_w.compile("triangular-solve", L)
        b = np.cos(np.arange(A.n, dtype=np.float64))  # deterministic RHS
        x_s = tri_s.solve_arrays(L.indptr, L.indices, L.data, b)
        x_w = tri_w.solve_arrays(L.indptr, L.indices, L.data, b, num_threads=2)
        bitwise = bitwise and np.array_equal(x_s, x_w)
        if not bitwise:
            raise AssertionError(
                f"wavefront execution differs from serial on {name}"
            )
        serial_seconds = best_of(lambda: fact_s.factorize_arrays(Ap, Ai, Ax))
        wf2_seconds = best_of(
            lambda: fact_w.factorize_arrays(Ap, Ai, Ax, num_threads=2)
        )
        # Warm-reload check through fresh drivers (fresh in-memory artifact
        # caches, shared on-disk cache): both variants must key separately
        # on disk and come back with zero recompiles.
        disk_before = dict(disk_cache_stats().as_dict())
        Sympiler(serial_options, cache=ArtifactCache()).compile("cholesky", A)
        Sympiler(wavefront_options, cache=ArtifactCache()).compile("cholesky", A)
        disk_after = dict(disk_cache_stats().as_dict())
        recompiles = (disk_after["compiles"] - disk_before["compiles"]) + (
            disk_after["py_writes"] - disk_before["py_writes"]
        )
        schedule = fact_w.schedule
        fallback = fact_w.parallel_mode == "serial-fallback"
        if expect_fallback and backend == "c" and not fallback:
            raise AssertionError(
                f"{name}: expected the deep-etree serial fallback, got "
                f"parallel_mode={fact_w.parallel_mode!r}"
            )
        return {
            "problem_id": problem_id,
            "name": name,
            "n": A.n,
            "nnz_L": fact_s.factor_nnz,
            "backend": backend,
            "parallel_mode": fact_w.parallel_mode,
            "cpu_count": os.cpu_count() or 1,
            "schedule_levels": schedule.n_levels if schedule is not None else 0,
            "schedule_avg_width": (
                float(schedule.average_width) if schedule is not None else 0.0
            ),
            "serial_seconds": serial_seconds,
            "wavefront2_seconds": wf2_seconds,
            "speedup_2threads": serial_seconds / max(wf2_seconds, 1e-12),
            "bitwise_identical": bitwise,
            "zero_recompiles": recompiles == 0,
            "serial_fallback": fallback,
        }

    rows: List[Dict[str, object]] = []
    for entry in _entries(suite):
        # Wide-level stand-in per entry: a mindeg-ordered 2-D grid large
        # enough that level widths dwarf the per-level barrier (the smoke
        # matrices would measure barrier overhead, not wavefront execution).
        side = 40 + 4 * (entry.problem_id % 3)
        grid = laplacian_2d(side, shift=0.1)
        A = ordering_by_name("mindeg")(grid).symmetric_permute(grid)
        rows.append(measure(entry.problem_id, entry.name, A, expect_fallback=False))
    # Deep-etree pattern: a 1-D chain's elimination tree is a path, every
    # level has one column, and the backend must decline wavefront codegen.
    chain = laplacian_2d(400, 1, shift=0.1)
    rows.append(measure(-1, "deep_chain_400", chain, expect_fallback=True))
    return rows


# --------------------------------------------------------------------------- #
# Front end: first-call specialization cost vs warm-call numeric execution
# --------------------------------------------------------------------------- #
def frontend_specialization(
    suite: Optional[Sequence[SuiteEntry]] = None,
    *,
    backend: str = "python",
    repeats: int = 5,
) -> List[Dict[str, object]]:
    """``repro.solve``: specialize once, then numeric-only warm calls.

    One row per auto-selected route (``cholesky`` / ``ldlt`` / ``lu`` /
    ``pcg``), each on a generated matrix whose structure forces that route —
    the suite argument is accepted for harness uniformity but unused, since
    route membership is fixed by construction, not by suite size.  Per row:

    * ``bitwise_identical`` — the front-end answer equals the explicit API
      (``SparseLinearSolver`` / ``preconditioned_conjugate_gradient``) bit
      for bit, asserted here and gated,
    * ``zero_recompiles`` — warm calls generate nothing: zero shared-cache
      misses (no symbolic inspection) and zero disk-cache compiles/writes,
    * ``warm_specializations`` — specialization-counter delta across the
      warm calls (deterministically 0),
    * ``specialize_over_warm`` — first-call cost over warm-call cost (the
      lazy-specialization amortization the SEJITS pattern promises),
    * ``warm_over_spsolve`` — warm front-end solve over
      ``scipy.sparse.linalg.spsolve`` on the same system, same run
      (informational scale for the python backend; gated only against its
      own baseline with a wide noise floor).
    """
    import time as _time

    from scipy.sparse.linalg import spsolve as scipy_spsolve

    from repro.compiler.codegen.c_backend import disk_cache_stats
    from repro.compiler.sympiler import _SHARED_CACHE
    from repro.frontend.probes import DEFAULT_ITERATIVE_THRESHOLD
    from repro.frontend.specialized import SpecializedSolver
    from repro.solvers.cg import preconditioned_conjugate_gradient
    from repro.solvers.linear_solver import SparseLinearSolver
    from repro.sparse.generators import (
        laplacian_2d,
        random_spd,
        saddle_point_indefinite,
    )

    options = SympilerOptions(backend=backend)

    def best_of(fn) -> float:
        times = []
        for _ in range(repeats):
            t0 = _time.perf_counter()
            fn()
            times.append(_time.perf_counter() - t0)
        return min(times)

    cases = [
        ("route_cholesky", random_spd(120, 0.03, seed=31), "cholesky", None),
        ("route_ldlt", saddle_point_indefinite(80, 30, seed=32), "ldlt", None),
        ("route_lu", unsymmetric_diag_dominant(140, seed=33), "lu", None),
        # n = 196 over a threshold of 100 routes the probe to iterative.
        ("route_pcg", laplacian_2d(14), "pcg", 100),
    ]
    rows: List[Dict[str, object]] = []
    for name, A, expected, threshold in cases:
        S = A.to_scipy().tocsc()
        b = np.cos(np.arange(A.n, dtype=np.float64))  # deterministic RHS
        front = SpecializedSolver(
            options=options,
            iterative_threshold=(
                threshold if threshold is not None else DEFAULT_ITERATIVE_THRESHOLD
            ),
        )
        t0 = _time.perf_counter()
        x = front.solve(S, b)
        cold_seconds = _time.perf_counter() - t0
        if front.stats.methods != {expected: 1}:
            raise AssertionError(
                f"{name}: probe selected {front.stats.methods}, expected {expected!r}"
            )
        if expected == "pcg":
            x_ref = preconditioned_conjugate_gradient(A, b, options=options).x
        else:
            x_ref = SparseLinearSolver(
                A, method=expected, ordering="mindeg", options=options
            ).solve(b)
        bitwise = bool(np.array_equal(x, x_ref))
        if not bitwise:
            raise AssertionError(f"{name}: front end differs from the explicit API")

        # Warm calls: same structure, same values — pure numeric execution.
        specializations_before = front.stats.specializations
        misses_before = _SHARED_CACHE.stats.misses
        disk_before = dict(disk_cache_stats().as_dict())
        warm_seconds = best_of(lambda: front.solve(S, b))
        misses_delta = _SHARED_CACHE.stats.misses - misses_before
        disk_after = dict(disk_cache_stats().as_dict())
        recompiles = (
            misses_delta
            + (disk_after["compiles"] - disk_before["compiles"])
            + (disk_after["py_writes"] - disk_before["py_writes"])
        )
        warm_specializations = front.stats.specializations - specializations_before

        spsolve_seconds = best_of(lambda: scipy_spsolve(S, b))
        rows.append(
            {
                "name": name,
                "n": A.n,
                "nnz": A.nnz,
                "method": front.cache_info()["entries"][0]["method"],
                "backend": backend,
                "bitwise_identical": bitwise,
                "zero_recompiles": recompiles == 0,
                "warm_specializations": int(warm_specializations),
                "cold_seconds": cold_seconds,
                "warm_seconds": warm_seconds,
                "specialize_over_warm": cold_seconds / max(warm_seconds, 1e-12),
                "spsolve_seconds": spsolve_seconds,
                "warm_over_spsolve": warm_seconds / max(spsolve_seconds, 1e-12),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Observability layer: disabled-path overhead and enabled-path coverage
# --------------------------------------------------------------------------- #
def observe_overhead(
    suite: Optional[Sequence[SuiteEntry]] = None,
    *,
    backend: str = "python",
    repeats: int = 5,
    calibration_spans: int = 50_000,
) -> List[Dict[str, object]]:
    """The observability layer's cost contract, measured.

    The tracing instrumentation lives permanently on the pipeline's hot
    paths, so its *disabled* cost is the one that matters: a disabled
    ``span()`` call is one module-flag check returning a shared no-op
    object.  This experiment prices that check directly
    (``disabled_span_ns``, best of ``repeats`` spins over
    ``calibration_spans`` calls), counts how many spans one warm
    ``repro.solve`` actually opens when tracing *is* on
    (``spans_per_warm_solve``), and folds both into the gated headline::

        disabled_overhead_pct = 100 · K · c / t

    with ``K`` spans per warm solve, ``c`` the disabled span cost and ``t``
    the warm untraced solve time — the worst-case fraction of a production
    solve spent on dormant instrumentation (CI asserts < 3 %).  A second
    leg prices the same contract across the service wire: an in-process
    ``serve_background`` server, a warm untraced ``ServiceClient.solve``
    (``warm_wire_seconds``), and the span count of one traced wire solve
    (client ``wire-solve`` + server ``serve`` + dispatch spans) folded into
    ``remote_span_overhead_pct`` — gated at the same < 3 % line.  The
    enabled pass also proves the export surface end to end:
    ``breakdown_has_phases`` (the amortization breakdown saw the numeric
    phase) and ``trace_nonempty`` (the Chrome trace carries events).

    The suite argument is accepted for harness uniformity but unused — one
    fixed matrix (``laplacian_2d(16)``) keeps the span count and timing
    deterministic.
    """
    import time as _time

    import repro.compiler.sympiler as _sympiler_module
    from repro import observe
    from repro.compiler.cache import ArtifactCache
    from repro.frontend.specialized import SpecializedSolver
    from repro.observe import trace as observe_trace
    from repro.sparse.generators import laplacian_2d

    A = laplacian_2d(16, shift=0.1)
    b = np.cos(np.arange(A.n, dtype=np.float64))
    options = SympilerOptions(backend=backend)

    def best_of(fn) -> float:
        times = []
        for _ in range(repeats):
            t0 = _time.perf_counter()
            fn()
            times.append(_time.perf_counter() - t0)
        return min(times)

    # A fresh shared artifact cache keeps the cold specialization in-run
    # (same isolation trick as the cache probe); tracing state is restored
    # on the way out so the experiment never leaks process-global flips.
    was_enabled = observe_trace.enabled()
    shared_before = _sympiler_module._SHARED_CACHE
    _sympiler_module._SHARED_CACHE = ArtifactCache()
    try:
        observe_trace.disable()
        front = SpecializedSolver(options=options)
        front.solve(A, b)  # cold specialization, untraced
        warm_solve_seconds = best_of(lambda: front.solve(A, b))

        def spin() -> None:
            sp = observe_trace.span
            for _ in range(calibration_spans):
                with sp("bench-noop"):
                    pass

        disabled_span_seconds = best_of(spin) / calibration_spans

        observe_trace.enable()
        observe_trace.reset()
        tracer = observe_trace.get_tracer()
        front.solve(A, b)
        spans_per_warm_solve = len(tracer)
        trace_doc = observe.chrome_trace()
        breakdown = observe.breakdown()

        # Wire leg: the same contract measured across the service wire.  The
        # server runs in-process (serve_background thread), so both the
        # client-side ``wire-solve`` span and the server-side ``serve`` span
        # hit the same process-global tracer — the span count per wire solve
        # is the total dormant-instrumentation exposure of one remote solve.
        observe_trace.disable()
        from repro.service import ServiceClient, SolverService, serve_background

        service = SolverService(
            options=SympilerOptions(backend=backend, enable_vs_block=False),
            window_seconds=0.002,
            max_batch=8,
        )
        server, thread = serve_background(service)
        try:
            with ServiceClient(server.server_address) as client:
                handle = client.register_pattern(A)
                client.solve(handle, A.data, b)  # warm the wire path
                warm_wire_seconds = best_of(
                    lambda: client.solve(handle, A.data, b)
                )
                observe_trace.enable()
                observe_trace.reset()
                client.solve(handle, A.data, b)
                spans_per_wire_solve = len(tracer)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            service.close()
    finally:
        _sympiler_module._SHARED_CACHE = shared_before
        if was_enabled:
            observe_trace.enable()
        else:
            observe_trace.disable()

    disabled_overhead_pct = (
        100.0
        * spans_per_warm_solve
        * disabled_span_seconds
        / max(warm_solve_seconds, 1e-12)
    )
    remote_span_overhead_pct = (
        100.0
        * spans_per_wire_solve
        * disabled_span_seconds
        / max(warm_wire_seconds, 1e-12)
    )
    numeric_group = breakdown["groups"].get("numeric", {})
    return [
        {
            "name": "laplacian_2d_16",
            "backend": backend,
            "n": A.n,
            "nnz": A.nnz,
            "warm_solve_seconds": warm_solve_seconds,
            "disabled_span_ns": disabled_span_seconds * 1e9,
            "spans_per_warm_solve": int(spans_per_warm_solve),
            "disabled_overhead_pct": disabled_overhead_pct,
            "warm_wire_seconds": warm_wire_seconds,
            "spans_per_wire_solve": int(spans_per_wire_solve),
            "remote_span_overhead_pct": remote_span_overhead_pct,
            "breakdown_has_phases": bool(numeric_group.get("calls", 0) > 0),
            "trace_nonempty": bool(trace_doc["traceEvents"]),
        }
    ]


# --------------------------------------------------------------------------- #
# §4.3 overhead report
# --------------------------------------------------------------------------- #
def overhead_report(
    suite: Optional[Sequence[SuiteEntry]] = None,
    *,
    backend: str = "python",
) -> List[Dict[str, object]]:
    """§4.3: compile-time cost of Sympiler relative to one numeric execution."""
    rows: List[Dict[str, object]] = []
    sym = Sympiler()
    for entry in _entries(suite):
        prep = prepare(entry, backend=backend)
        tri = sym.compile_triangular_solve(prep.L, rhs_pattern=prep.rhs_pattern, options=prep.options())
        tri_numeric, _ = time_callable(lambda: tri.solve(prep.L, prep.b), repeats=3)
        chol = sym.compile_cholesky(prep.A, options=prep.options())
        chol_numeric, _ = time_callable(lambda: chol.factorize(prep.A), repeats=2)
        rows.append(
            {
                "problem_id": entry.problem_id,
                "name": entry.name,
                "tri_symbolic_over_numeric": tri.timings.inspection / max(tri_numeric, 1e-12),
                "tri_codegen_over_numeric": (tri.timings.codegen + tri.timings.compile)
                / max(tri_numeric, 1e-12),
                "chol_symbolic_over_numeric": chol.timings.inspection / max(chol_numeric, 1e-12),
                "chol_codegen_over_numeric": (chol.timings.codegen + chol.timings.compile)
                / max(chol_numeric, 1e-12),
            }
        )
    return rows
