"""Benchmark harness reproducing the paper's evaluation (Section 4).

* :mod:`repro.bench.suite`   — the synthetic matrix suite standing in for
  Table 2's SuiteSparse matrices (see DESIGN.md for the substitution).
* :mod:`repro.bench.metrics` — timing helpers and FLOP-rate computation.
* :mod:`repro.bench.figures` — one driver per table/figure: Table 2,
  Figures 6–9, the §1.1 intro speedups and the §4.3 overhead discussion.
* :mod:`repro.bench.reporting` — ASCII/CSV rendering of result rows.
* ``python -m repro.bench <experiment>`` — command-line entry point.
"""

from repro.bench.figures import (
    fig6_triangular_performance,
    fig7_cholesky_performance,
    fig8_triangular_accumulated,
    fig9_cholesky_accumulated,
    intro_triangular_speedups,
    overhead_report,
    table2_suite_listing,
)
from repro.bench.metrics import gflops_rate, time_callable
from repro.bench.reporting import render_csv, render_table
from repro.bench.suite import SuiteEntry, build_suite, load_suite_matrix, small_suite

__all__ = [
    "SuiteEntry",
    "build_suite",
    "small_suite",
    "load_suite_matrix",
    "time_callable",
    "gflops_rate",
    "table2_suite_listing",
    "fig6_triangular_performance",
    "fig7_cholesky_performance",
    "fig8_triangular_accumulated",
    "fig9_cholesky_accumulated",
    "intro_triangular_speedups",
    "overhead_report",
    "render_table",
    "render_csv",
]
