"""Render experiment result rows as ASCII tables or CSV."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

__all__ = ["render_table", "render_csv", "geometric_mean"]


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def render_table(rows: List[Dict[str, object]], *, columns: Sequence[str] | None = None, title: str = "") -> str:
    """Render a list of result dicts as a fixed-width ASCII table."""
    if not rows:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    formatted: List[List[str]] = []
    for row in rows:
        line = []
        for c in columns:
            text = _format_value(row.get(c, ""))
            widths[c] = max(widths[c], len(text))
            line.append(text)
        formatted.append(line)
    parts: List[str] = []
    if title:
        parts.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    parts.append(header)
    parts.append("-+-".join("-" * widths[c] for c in columns))
    for line in formatted:
        parts.append(" | ".join(text.ljust(widths[c]) for text, c in zip(line, columns)))
    return "\n".join(parts) + "\n"


def render_csv(rows: List[Dict[str, object]], *, columns: Sequence[str] | None = None) -> str:
    """Render result rows as CSV text."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(str(c) for c in columns)]
    for row in rows:
        lines.append(",".join(_format_value(row.get(c, "")) for c in columns))
    return "\n".join(lines) + "\n"


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (used for average-speedup summaries)."""
    positive = [v for v in values if v > 0]
    if not positive:
        return float("nan")
    return math.exp(sum(math.log(v) for v in positive) / len(positive))
