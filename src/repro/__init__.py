"""repro — a Python reproduction of Sympiler (Cheshmi et al., SC 2017).

Sympiler is a sparsity-aware code generator for sparse matrix algorithms: it
runs the symbolic analysis of a sparse kernel at compile time and generates
numeric code specialized to one sparsity pattern.  This package reproduces the
full system:

* :mod:`repro.sparse`   — CSC/CSR/COO containers, generators, orderings, I/O.
* :mod:`repro.symbolic` — reach-sets, elimination trees, fill prediction,
  supernodes, and the symbolic-inspector framework.
* :mod:`repro.kernels`  — reference numeric kernels (dense micro-kernels,
  triangular-solve variants, simplicial/supernodal Cholesky).
* :mod:`repro.compiler` — the Sympiler core: domain AST, lowering,
  inspector-guided transformations (VI-Prune, VS-Block), low-level
  transformations and code generation (specialized Python and C backends).
* :mod:`repro.baselines` — Eigen-like and CHOLMOD-like library baselines.
* :mod:`repro.solvers`  — factor-once/solve-many driver, preconditioned CG
  and Newton–Raphson loops (single and ensemble) with a fixed-sparsity
  Jacobian.
* :mod:`repro.runtime`  — the batched/parallel numeric runtime: level-set
  execution schedules, the batch execution engine and the
  :class:`~repro.runtime.facade.BatchedSolver` facade.
* :mod:`repro.bench`    — the benchmark harness reproducing every table and
  figure of the paper's evaluation.
* :mod:`repro.frontend` — the lazy-specializing, scipy-native front end:
  ``repro.solve(A, b)`` with kernel auto-selection and a per-structure
  specialization cache, plus the ``@sympiled`` decorator.
* :mod:`repro.observe`  — unified observability: one metrics registry over
  every stats surface, structured pipeline tracing (zero-cost when
  disabled), and JSON/Chrome-trace/Prometheus exporters plus the live
  amortization breakdown (``python -m repro.observe``).
* :mod:`repro.service`  — the serving layer behind one
  :class:`~repro.service.endpoint.SolverEndpoint` surface at three scales:
  the in-process :class:`SolverService`, the pipelined version-negotiated
  wire protocol with :class:`ServiceClient`, and the sharded
  :class:`ShardFleet` (consistent-hash routing, warm shard failover).

Quickstart::

    import numpy as np
    import scipy.sparse as sp
    import repro

    A = sp.random_array((500, 500), density=0.01)
    A = (A @ A.T + 500 * sp.eye_array(500)).tocsc()   # any scipy SPD matrix
    x = repro.solve(A, np.ones(500))    # probe + specialize + solve
    x = repro.solve(A, np.arange(500))  # same structure: numeric-only
"""

from repro._version import __version__
from repro.compiler import (
    LDLTFactors,
    LUFactors,
    SympiledCholesky,
    SympiledIC0,
    SympiledILU0,
    SympiledLDLT,
    SympiledLU,
    SympiledTriangularSolve,
    Sympiler,
    SympilerOptions,
    kernel_spec,
    registered_kernels,
)
from repro.sparse import (
    CSCMatrix,
    CSRMatrix,
    COOMatrix,
    Permutation,
    TripletBuilder,
    banded_spd,
    block_tridiagonal_spd,
    circuit_like_spd,
    fem_stencil_2d,
    laplacian_2d,
    laplacian_3d,
    power_grid_spd,
    random_spd,
    saddle_point_indefinite,
    sparse_rhs,
    unsymmetric_diag_dominant,
)
from repro.runtime import BatchedSolver, ExecutionSchedule
from repro.solvers import SparseLinearSolver, preconditioned_conjugate_gradient

__all__ = [
    "__version__",
    "solve",
    "sympiled",
    "SpecializedSolver",
    "SolverService",
    "PatternHandle",
    "ServiceClient",
    "ShardFleet",
    "SolverEndpoint",
    "Sympiler",
    "SympilerOptions",
    "SympiledCholesky",
    "SympiledTriangularSolve",
    "SympiledLDLT",
    "SympiledLU",
    "SympiledIC0",
    "SympiledILU0",
    "preconditioned_conjugate_gradient",
    "LDLTFactors",
    "LUFactors",
    "kernel_spec",
    "registered_kernels",
    "SparseLinearSolver",
    "BatchedSolver",
    "ExecutionSchedule",
    "CSCMatrix",
    "CSRMatrix",
    "COOMatrix",
    "TripletBuilder",
    "Permutation",
    "laplacian_2d",
    "laplacian_3d",
    "fem_stencil_2d",
    "banded_spd",
    "block_tridiagonal_spd",
    "random_spd",
    "circuit_like_spd",
    "power_grid_spd",
    "saddle_point_indefinite",
    "unsymmetric_diag_dominant",
    "sparse_rhs",
]

#: PEP 562 lazy re-exports.  The serving layer: importing :mod:`repro` must
#: not drag sockets/servers in, and the service package imports the solver
#: stack (which this module is still initializing at import time).  The
#: front end: ``repro.solve(A, b)`` is the public entry point of the whole
#: stack, resolved on first use for the same initialization-order reason.
_LAZY_SERVICE = {
    "SolverService": "repro.service.session",
    "PatternHandle": "repro.service.session",
    "ServiceClient": "repro.service.client",
    "ShardFleet": "repro.service.fleet",
    "SolverEndpoint": "repro.service.endpoint",
    "solve": "repro.frontend.specialized",
    "sympiled": "repro.frontend.specialized",
    "SpecializedSolver": "repro.frontend.specialized",
}


def __getattr__(name: str):
    module_name = _LAZY_SERVICE.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value
