"""Ablation: the VS-Block participation / supernode-width thresholds.

DESIGN.md calls out two tuned knobs the paper mentions in §4.2: the
participation threshold on the average supernode width (the paper's
hand-tuned "160") and the cap on supernode width.  This ablation sweeps both
on the Cholesky numeric phase so their effect can be compared per matrix.
"""

import numpy as np
import pytest

from repro.compiler.sympiler import Sympiler

_THRESHOLDS = [1.0, 1.5, 3.0, 1e9]  # 1e9 effectively disables VS-Block
_WIDTH_CAPS = [None, 4, 16]


@pytest.mark.parametrize("threshold", _THRESHOLDS, ids=lambda t: f"avgwidth>={t:g}")
def test_ablation_participation_threshold(benchmark, prepared, threshold):
    A = prepared.A
    options = prepared.options(vs_block_min_avg_width=threshold)
    compiled = Sympiler().compile_cholesky(A, options=options)
    result = benchmark.pedantic(lambda: compiled.factorize(A), rounds=3, iterations=1)
    benchmark.extra_info["vs_block_applied"] = "vs-block" in compiled.applied_transformations
    np.testing.assert_allclose(result.to_dense(), prepared.L.to_dense(), atol=1e-8)


@pytest.mark.parametrize("cap", _WIDTH_CAPS, ids=lambda c: f"maxwidth={c}")
def test_ablation_supernode_width_cap(benchmark, prepared, cap):
    A = prepared.A
    options = prepared.options(max_supernode_width=cap)
    compiled = Sympiler().compile_cholesky(A, options=options)
    result = benchmark.pedantic(lambda: compiled.factorize(A), rounds=3, iterations=1)
    benchmark.extra_info["n_supernodes"] = compiled.inspection.supernodes.n_supernodes
    np.testing.assert_allclose(result.to_dense(), prepared.L.to_dense(), atol=1e-8)
