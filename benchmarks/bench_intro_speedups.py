"""Section 1.1 speedups: Sympiler vs. the naive and library triangular solves.

The introduction reports 8.4–19x (avg 13.6x) over the naive forward solve of
Figure 1b and 1.2–1.7x (avg 1.3x) over the library code of Figure 1c.  This
module benchmarks the three codes on every suite matrix so the ratios can be
read off the pytest-benchmark comparison.
"""

import pytest

from repro.baselines.eigen_like import eigen_like_trisolve
from repro.compiler.sympiler import Sympiler
from repro.kernels.triangular import trisolve_naive

_VARIANTS = ["naive_fig1b", "library_fig1c", "sympiler_generated"]


@pytest.mark.parametrize("variant", _VARIANTS)
def test_intro_triangular_speedups(benchmark, prepared, rhs_pattern, variant):
    L, b = prepared.L, prepared.b
    if variant == "naive_fig1b":
        benchmark(lambda: trisolve_naive(L, b))
    elif variant == "library_fig1c":
        benchmark(lambda: eigen_like_trisolve(L, b))
    else:
        compiled = Sympiler().compile_triangular_solve(
            L, rhs_pattern=rhs_pattern, options=prepared.options()
        )
        benchmark(lambda: compiled.solve(L, b))
