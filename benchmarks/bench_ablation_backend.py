"""Ablation: specialized-Python backend vs. specialized-C backend.

The original Sympiler generates C compiled with GCC ``-O3``; this repository
additionally provides a pure-Python/NumPy backend (see DESIGN.md).  This
ablation measures both backends on the same generated kernels.  The C cases
are skipped automatically when no C compiler is installed.
"""

import numpy as np
import pytest

from repro.compiler.codegen.c_backend import c_compiler_available
from repro.compiler.sympiler import Sympiler

_HAS_CC = c_compiler_available("cc") or c_compiler_available("gcc")
_CC = "cc" if c_compiler_available("cc") else "gcc"

_BACKENDS = ["python", "c"]


def _options(prepared, backend):
    if backend == "c":
        return prepared.options().with_updates(backend="c", c_compiler=_CC)
    return prepared.options()


@pytest.mark.parametrize("backend", _BACKENDS)
def test_ablation_backend_triangular(benchmark, prepared, rhs_pattern, backend):
    if backend == "c" and not _HAS_CC:
        pytest.skip("no C compiler available")
    L, b = prepared.L, prepared.b
    compiled = Sympiler().compile_triangular_solve(
        L, rhs_pattern=rhs_pattern, options=_options(prepared, backend)
    )
    benchmark(lambda: compiled.solve(L, b))


@pytest.mark.parametrize("backend", _BACKENDS)
def test_ablation_backend_cholesky(benchmark, prepared, backend):
    if backend == "c" and not _HAS_CC:
        pytest.skip("no C compiler available")
    A = prepared.A
    compiled = Sympiler().compile_cholesky(A, options=_options(prepared, backend))
    result = benchmark.pedantic(lambda: compiled.factorize(A), rounds=3, iterations=1)
    np.testing.assert_allclose(result.to_dense(), prepared.L.to_dense(), atol=1e-8)
