"""Ablation: inspector-guided transformation ordering.

Section 4.2 notes that Sympiler applies VS-Block before VI-Prune and that
this ordering "often leads to better performance".  This ablation runs the
generated triangular solve with both orderings (and with each transformation
alone) so the difference is measurable per matrix.
"""

import numpy as np
import pytest

from repro.baselines.eigen_like import eigen_like_trisolve
from repro.compiler.sympiler import Sympiler

_CONFIGS = {
    "vs_then_vi": dict(transformation_order=("vs-block", "vi-prune")),
    "vi_then_vs": dict(transformation_order=("vi-prune", "vs-block")),
    "vi_only": dict(enable_vs_block=False),
    "vs_only": dict(enable_vi_prune=False),
}


@pytest.mark.parametrize("config", list(_CONFIGS), ids=list(_CONFIGS))
def test_ablation_transformation_ordering(benchmark, prepared, rhs_pattern, config):
    L, b = prepared.L, prepared.b
    options = prepared.options(**_CONFIGS[config])
    compiled = Sympiler().compile_triangular_solve(L, rhs_pattern=rhs_pattern, options=options)
    x = benchmark(lambda: compiled.solve(L, b))
    benchmark.extra_info["applied"] = ",".join(compiled.applied_transformations)
    np.testing.assert_allclose(x, eigen_like_trisolve(L, b), atol=1e-8)
