"""Table 2: matrix-suite construction and symbolic-analysis cost.

The paper's Table 2 lists the evaluation matrices; this benchmark regenerates
the listing (printed once per session) and measures the cost of building each
suite matrix plus running the Cholesky symbolic inspector on it — the
compile-time work every later experiment amortizes.
"""

import pytest

from repro.bench.figures import table2_suite_listing
from repro.bench.reporting import render_table
from repro.bench.suite import load_suite_matrix, selected_suite
from repro.symbolic.inspector import CholeskyInspector

SUITE = selected_suite()


_printed = False


@pytest.fixture(scope="module", autouse=True)
def _print_listing_once():
    global _printed
    if not _printed:
        print()
        print(render_table(table2_suite_listing(SUITE), title="Table 2: matrix suite"))
        _printed = True
    yield


@pytest.mark.parametrize("entry", SUITE, ids=[e.name for e in SUITE])
def test_symbolic_inspection_cost(benchmark, entry):
    """Time of the full Cholesky symbolic inspection for each suite matrix."""
    A = load_suite_matrix(entry)
    inspector = CholeskyInspector()
    result = benchmark.pedantic(lambda: inspector.inspect(A), rounds=3, iterations=1)
    assert result.factor_nnz >= A.n
