"""Figure 6: sparse triangular solve performance (numeric phase).

One benchmark per (suite matrix × variant), where the variants follow the
figure's legend: the Eigen-like library solve (Fig. 1c) and the Sympiler
generated code with VS-Block, VS-Block+VI-Prune, and +low-level
transformations.  ``pytest-benchmark``'s comparison output per matrix group
reproduces the stacked bars of the figure; GFLOP/s is attached to each run as
extra info.
"""

import numpy as np
import pytest

from repro.baselines.eigen_like import eigen_like_trisolve
from repro.compiler.sympiler import Sympiler
from repro.kernels.flops import triangular_solve_flops
from repro.symbolic.reach import reach_set_sorted

_VARIANTS = ["eigen", "sympiler_vs_block", "sympiler_vs_vi", "sympiler_full"]


def _variant_options(prepared, variant):
    if variant == "sympiler_vs_block":
        return prepared.options(enable_vi_prune=False, enable_low_level=False)
    if variant == "sympiler_vs_vi":
        return prepared.options(enable_low_level=False)
    return prepared.options()


@pytest.mark.parametrize("variant", _VARIANTS)
def test_fig6_triangular_solve(benchmark, prepared, rhs_pattern, variant):
    L, b = prepared.L, prepared.b
    flops = triangular_solve_flops(L, reach_set_sorted(L, rhs_pattern))
    if variant == "eigen":
        run = lambda: eigen_like_trisolve(L, b)  # noqa: E731
    else:
        compiled = Sympiler().compile_triangular_solve(
            L, rhs_pattern=rhs_pattern, options=_variant_options(prepared, variant)
        )
        run = lambda: compiled.solve(L, b)  # noqa: E731
    x = benchmark(run)
    try:
        median = benchmark.stats.stats.median
        benchmark.extra_info["gflops"] = flops / max(median, 1e-12) / 1e9
    except AttributeError:  # pragma: no cover - older pytest-benchmark APIs
        pass
    benchmark.extra_info["reach_size"] = int(reach_set_sorted(L, rhs_pattern).size)
    # Correctness guard: every variant must produce the same solution.
    np.testing.assert_allclose(x, eigen_like_trisolve(L, b), atol=1e-8)
