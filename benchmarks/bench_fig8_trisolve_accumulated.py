"""Figure 8: triangular solve — accumulated symbolic + numeric time.

The paper normalizes Sympiler's symbolic (inspection) and numeric times to
Eigen's solve time.  Here each suite matrix gets three benchmarks:

* ``eigen_solve``       — the baseline library solve (the normalizer),
* ``sympiler_numeric``  — the generated numeric solve alone, and
* ``sympiler_symbolic_plus_numeric`` — a full cold start: symbolic
  inspection, transformation, code generation, compilation and one solve
  (what a user pays when the sparsity pattern is seen for the first time).
"""

import pytest

from repro.baselines.eigen_like import eigen_like_trisolve
from repro.compiler.cache import ArtifactCache
from repro.compiler.sympiler import Sympiler

_MODES = ["eigen_solve", "sympiler_numeric", "sympiler_symbolic_plus_numeric"]


@pytest.mark.parametrize("mode", _MODES)
def test_fig8_accumulated_trisolve(benchmark, prepared, rhs_pattern, mode):
    L, b = prepared.L, prepared.b
    if mode == "eigen_solve":
        benchmark(lambda: eigen_like_trisolve(L, b))
        return
    if mode == "sympiler_numeric":
        compiled = Sympiler().compile_triangular_solve(
            L, rhs_pattern=rhs_pattern, options=prepared.options()
        )
        benchmark(lambda: compiled.solve(L, b))
        benchmark.extra_info["symbolic_seconds"] = compiled.symbolic_seconds
        return

    def cold_start():
        # A fresh private cache per round: the process-wide shared cache
        # would otherwise turn the "cold" compile into a dict lookup.
        sym = Sympiler(cache=ArtifactCache())
        compiled = sym.compile_triangular_solve(
            L, rhs_pattern=rhs_pattern, options=prepared.options()
        )
        return compiled.solve(L, b)

    benchmark.pedantic(cold_start, rounds=3, iterations=1)
