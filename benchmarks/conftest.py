"""Shared fixtures for the benchmark suite.

By default the benchmarks run on the *small* matrix suite so that
``pytest benchmarks/ --benchmark-only`` finishes in a couple of minutes.  Set
``REPRO_BENCH_SUITE=full`` to run on the full eleven-matrix suite of Table 2
(the same one used by ``python -m repro.bench``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.figures import PreparedMatrix
from repro.bench.suite import selected_suite

SUITE = selected_suite()
_PREPARED: dict[str, PreparedMatrix] = {}


def suite_ids():
    return [entry.name for entry in SUITE]


@pytest.fixture(params=SUITE, ids=suite_ids())
def prepared(request):
    """A prepared suite matrix: matrix, factor, sparse RHS, inspection."""
    entry = request.param
    if entry.name not in _PREPARED:
        _PREPARED[entry.name] = PreparedMatrix(entry)
    return _PREPARED[entry.name]


@pytest.fixture()
def rhs_pattern(prepared):
    """Nonzero indices of the prepared sparse right-hand side."""
    return np.nonzero(prepared.b)[0]
