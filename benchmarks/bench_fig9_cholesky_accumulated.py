"""Figure 9: Cholesky — accumulated symbolic + numeric time.

Per suite matrix, five benchmarks: the symbolic and numeric phases of the
Eigen-like and CHOLMOD-like baselines, and a Sympiler cold start (inspection
+ transformation + code generation + compilation + one numeric
factorization).  Normalizing the accumulated times to the Eigen-like total
reproduces the figure.
"""

import pytest

from repro.baselines.cholmod_like import cholmod_like_numeric, cholmod_like_symbolic
from repro.baselines.eigen_like import eigen_like_numeric, eigen_like_symbolic
from repro.compiler.cache import ArtifactCache
from repro.compiler.sympiler import Sympiler

_MODES = [
    "eigen_symbolic",
    "eigen_numeric",
    "cholmod_symbolic",
    "cholmod_numeric",
    "sympiler_symbolic_plus_numeric",
]


@pytest.mark.parametrize("mode", _MODES)
def test_fig9_accumulated_cholesky(benchmark, prepared, mode):
    A = prepared.A
    if mode == "eigen_symbolic":
        benchmark.pedantic(lambda: eigen_like_symbolic(A), rounds=3, iterations=1)
    elif mode == "eigen_numeric":
        symbolic = eigen_like_symbolic(A)
        benchmark.pedantic(lambda: eigen_like_numeric(A, symbolic), rounds=3, iterations=1)
    elif mode == "cholmod_symbolic":
        benchmark.pedantic(lambda: cholmod_like_symbolic(A), rounds=3, iterations=1)
    elif mode == "cholmod_numeric":
        symbolic = cholmod_like_symbolic(A)
        benchmark.pedantic(lambda: cholmod_like_numeric(A, symbolic), rounds=3, iterations=1)
    else:

        def cold_start():
            # A fresh private cache per round: the process-wide shared cache
            # would otherwise turn the "cold" compile into a dict lookup.
            sym = Sympiler(cache=ArtifactCache())
            compiled = sym.compile_cholesky(A, options=prepared.options())
            return compiled.factorize(A)

        benchmark.pedantic(cold_start, rounds=3, iterations=1)
