"""Figure 7: sparse Cholesky factorization performance (numeric phase).

One benchmark per (suite matrix × system): the Eigen-like simplicial
baseline, the CHOLMOD-like supernodal baseline, and the Sympiler-generated
code with VS-Block only and with VS-Block + low-level transformations.
GFLOP/s (computed from the factor column counts as in the paper) is attached
as extra info.
"""

import numpy as np
import pytest

from repro.baselines.cholmod_like import cholmod_like_numeric, cholmod_like_symbolic
from repro.baselines.eigen_like import eigen_like_numeric, eigen_like_symbolic
from repro.compiler.sympiler import Sympiler
from repro.kernels.flops import cholesky_flops

_VARIANTS = ["eigen_numeric", "cholmod_numeric", "sympiler_vs_block", "sympiler_full"]


@pytest.mark.parametrize("variant", _VARIANTS)
def test_fig7_cholesky(benchmark, prepared, variant):
    A = prepared.A
    flops = cholesky_flops(prepared.inspection.l_col_counts)
    reference = prepared.L.to_dense()

    if variant == "eigen_numeric":
        symbolic = eigen_like_symbolic(A)
        run = lambda: eigen_like_numeric(A, symbolic)  # noqa: E731
        extract = lambda result: result.to_dense()  # noqa: E731
    elif variant == "cholmod_numeric":
        symbolic = cholmod_like_symbolic(A)
        run = lambda: cholmod_like_numeric(A, symbolic)  # noqa: E731
        extract = lambda result: result.to_dense()  # noqa: E731
    else:
        options = (
            prepared.options(enable_low_level=False)
            if variant == "sympiler_vs_block"
            else prepared.options()
        )
        compiled = Sympiler().compile_cholesky(A, options=options)
        run = lambda: compiled.factorize(A)  # noqa: E731
        extract = lambda result: result.to_dense()  # noqa: E731

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    try:
        median = benchmark.stats.stats.median
        benchmark.extra_info["gflops"] = flops / max(median, 1e-12) / 1e9
    except AttributeError:  # pragma: no cover - older pytest-benchmark APIs
        pass
    benchmark.extra_info["factor_nnz"] = int(prepared.inspection.factor_nnz)
    np.testing.assert_allclose(extract(result), reference, atol=1e-8)
