"""Tests for lowering numerical methods into the initial annotated AST."""

from repro.compiler.ast import Comment, ForRange, KernelFunction, pretty, walk
from repro.compiler.lowering import lower_cholesky, lower_triangular_solve


def _loops(kernel):
    return [n for n in walk(kernel.body) if isinstance(n, ForRange)]


class TestTriangularSolveLowering:
    def test_kernel_metadata(self):
        kernel = lower_triangular_solve()
        assert isinstance(kernel, KernelFunction)
        assert kernel.method == "triangular-solve"
        assert kernel.params == ["Lp", "Li", "Lx", "b"]
        assert kernel.meta["figure"] == "1b"

    def test_column_loop_is_annotated_for_both_transformations(self):
        kernel = lower_triangular_solve()
        column_loops = [
            l for l in _loops(kernel) if l.annotations.get("role") == "column-loop"
        ]
        assert len(column_loops) == 1
        loop = column_loops[0]
        assert loop.annotations["prunable"] is True
        assert loop.annotations["blockable"] is True

    def test_inner_update_is_vectorizable(self):
        kernel = lower_triangular_solve()
        inner = [l for l in _loops(kernel) if l.annotations.get("role") == "inner-update"]
        assert len(inner) == 1
        assert inner[0].annotations["vectorizable"] is True

    def test_no_constants_before_transformation(self):
        assert lower_triangular_solve().constants == {}

    def test_pretty_matches_figure_1b_structure(self):
        text = pretty(lower_triangular_solve())
        assert "x[j] /= Lx[Lp[j]]" in text
        assert "x[Li[p]] -= (Lx[p] * x[j])" in text


class TestCholeskyLowering:
    def test_kernel_metadata(self):
        kernel = lower_cholesky()
        assert kernel.method == "cholesky"
        assert kernel.params == ["Ap", "Ai", "Ax"]
        assert kernel.meta["algorithm"] == "left-looking"

    def test_update_loop_is_prunable(self):
        kernel = lower_cholesky()
        update = [l for l in _loops(kernel) if l.annotations.get("role") == "update-loop"]
        assert len(update) == 1
        assert update[0].annotations["prunable"] is True

    def test_column_loop_is_blockable(self):
        kernel = lower_cholesky()
        column = [l for l in _loops(kernel) if l.annotations.get("role") == "column-loop"]
        assert len(column) == 1
        assert column[0].annotations["blockable"] is True

    def test_comments_describe_phases(self):
        kernel = lower_cholesky()
        comments = [n.text for n in walk(kernel.body) if isinstance(n, Comment)]
        assert any("update" in c or "gather" in c for c in comments)
        assert any("column factorization" in c for c in comments)

    def test_fresh_instances_are_independent(self):
        a = lower_triangular_solve()
        b = lower_triangular_solve()
        a.add_constant("prune_set", [1, 2])
        assert "prune_set" not in b.constants
