"""Tests for the specialized-C code-generation backend."""

import numpy as np
import pytest

from repro.baselines.scipy_reference import reference_cholesky, reference_trisolve
from repro.compiler.codegen.c_backend import (
    CBackend,
    CCompilationError,
    CGeneratedModule,
    c_compiler_available,
    _format_c_array,
)
from repro.compiler.options import SympilerOptions
from repro.compiler.sympiler import Sympiler
from repro.sparse.generators import block_tridiagonal_spd, sparse_rhs

needs_cc = pytest.mark.skipif(
    not (c_compiler_available("cc") or c_compiler_available("gcc")),
    reason="no C compiler available",
)


def _c_options(**overrides):
    compiler = "cc" if c_compiler_available("cc") else "gcc"
    return SympilerOptions(backend="c", c_compiler=compiler, **overrides)


def test_format_c_array():
    text = _format_c_array("_C_x", np.array([1, 2, 3]), "int64_t")
    assert text == "static const int64_t _C_x[3] = {1,2,3};"
    empty = _format_c_array("_C_empty", np.array([], dtype=np.int64), "int64_t")
    assert "[1] = {0}" in empty


def test_c_compiler_available_for_missing_binary():
    assert not c_compiler_available("definitely-not-a-compiler-xyz")


def test_missing_compiler_raises_clear_error():
    module = CGeneratedModule(
        source="int main(void){return 0;}\n",
        entry_name="main",
        constants={},
        method="triangular-solve",
        codegen_seconds=0.0,
        compiler="definitely-not-a-compiler-xyz",
        flags=(),
        n=1,
    )
    with pytest.raises(CCompilationError):
        module.compile()


@needs_cc
class TestCGeneratedKernels:
    def test_triangular_solve_matches_reference(self, lower_factors):
        sym = Sympiler()
        for L in lower_factors.values():
            b = sparse_rhs(L.n, density=0.05, seed=21)
            compiled = sym.compile_triangular_solve(
                L, rhs_pattern=np.nonzero(b)[0], options=_c_options()
            )
            np.testing.assert_allclose(
                compiled.solve(L, b), reference_trisolve(L, b), atol=1e-9
            )

    def test_cholesky_simplicial_and_supernodal_match_reference(self, spd_matrices):
        sym = Sympiler()
        for options in (_c_options(enable_vs_block=False), _c_options()):
            for name in ("laplacian_2d", "block", "circuit"):
                A = spd_matrices[name]
                compiled = sym.compile_cholesky(A, options=options)
                L = compiled.factorize(A)
                np.testing.assert_allclose(
                    L.to_dense(), reference_cholesky(A), atol=1e-9
                )

    def test_c_source_embeds_static_constants(self, spd_matrices):
        compiled = Sympiler().compile_cholesky(spd_matrices["fem"], options=_c_options())
        assert "static const int64_t" in compiled.source
        assert compiled.source.startswith("/* Sympiler-generated kernel (C backend). */")
        assert compiled.module.shared_object is not None

    def test_c_backend_agrees_with_python_backend(self, spd_matrices):
        A = spd_matrices["block"]
        sym = Sympiler()
        c_factor = sym.compile_cholesky(A, options=_c_options()).factorize(A)
        py_factor = sym.compile_cholesky(A, options=SympilerOptions()).factorize(A)
        np.testing.assert_allclose(c_factor.to_dense(), py_factor.to_dense(), atol=1e-12)

    def test_non_positive_definite_returns_error(self):
        A = block_tridiagonal_spd(4, 4, seed=5, dense_coupling=True)
        compiled = Sympiler().compile_cholesky(A, options=_c_options())
        bad = A.copy()
        for j in range(bad.n):
            rows = bad.col_rows(j)
            pos = int(np.searchsorted(rows, j))
            bad.data[bad.indptr[j] + pos] = -1.0
        with pytest.raises(ValueError):
            compiled.factorize(bad)

    def test_peeled_and_blocked_structures_present(self, lower_factors):
        L = lower_factors["block"]
        b = sparse_rhs(L.n, nnz=2, seed=30)
        compiled = Sympiler().compile_triangular_solve(
            L, rhs_pattern=np.nonzero(b)[0], options=_c_options()
        )
        assert "/* supernode" in compiled.source or "/* pruned column loop" in compiled.source


def test_backend_name_and_flags():
    backend = CBackend(compiler="gcc", flags=("-O2", "-shared", "-fPIC"))
    assert backend.name == "c"
    assert backend.flags == ("-O2", "-shared", "-fPIC")
