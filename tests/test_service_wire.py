"""Wire-protocol tests: framing edge cases and socket round trips."""

from __future__ import annotations

import io
import threading
import time

import numpy as np
import pytest

from repro.compiler.options import SympilerOptions
from repro.service import (
    PatternEvictedError,
    ServiceClient,
    ServiceOverloadedError,
    SolverService,
    serve_background,
)
from repro.service.wire import (
    MAGIC,
    ProtocolError,
    handle_request,
    recv_message,
    send_message,
)
from repro.solvers.linear_solver import SparseLinearSolver
from repro.sparse.generators import fem_stencil_2d, laplacian_2d


def _roundtrip(header, frames=()):
    buffer = io.BytesIO()
    send_message(buffer, header, frames)
    buffer.seek(0)
    return recv_message(buffer)


class TestFraming:
    def test_header_only_roundtrip(self):
        header, frames = _roundtrip({"op": "ping", "x": 1.5, "s": "é"})
        assert header["op"] == "ping" and header["x"] == 1.5 and header["s"] == "é"
        assert frames == []

    @pytest.mark.parametrize(
        "array",
        [
            np.arange(5, dtype=np.float64),
            np.arange(6, dtype=np.int64),
            np.arange(4, dtype=np.int32),
            np.arange(3, dtype=np.float32),
            np.zeros(0, dtype=np.float64),  # empty frame
            np.zeros((0, 4), dtype=np.float64),  # empty 2-D frame
            np.array(3.25, dtype=np.float64),  # 0-d scalar frame
            np.arange(12, dtype=np.float64).reshape(3, 4),  # 2-D frame
            np.array([True, False, True]),  # bool frame
        ],
        ids=lambda a: f"{a.dtype}-{a.shape}",
    )
    def test_frame_dtype_shape_roundtrip(self, array):
        _, frames = _roundtrip({"op": "x"}, [array])
        assert len(frames) == 1
        result = frames[0]
        assert result.dtype == array.dtype
        assert result.shape == array.shape
        assert np.array_equal(result, array)

    def test_noncontiguous_frame_is_sent_contiguously(self):
        base = np.arange(20, dtype=np.float64)
        strided = base[::2]
        _, frames = _roundtrip({"op": "x"}, [strided])
        assert np.array_equal(frames[0], strided)

    def test_multiple_frames_keep_order(self):
        a = np.arange(4, dtype=np.int64)
        b = np.linspace(0, 1, 7)
        _, frames = _roundtrip({"op": "x"}, [a, b])
        assert np.array_equal(frames[0], a)
        assert np.array_equal(frames[1], b)

    def test_float_payload_is_bit_exact(self):
        values = np.array([np.pi, -0.0, np.nextafter(1.0, 2.0), 1e-308])
        _, frames = _roundtrip({"op": "x"}, [values])
        assert values.tobytes() == frames[0].tobytes()

    def test_eof_returns_none(self):
        assert recv_message(io.BytesIO(b"")) is None

    def test_bad_magic_rejected(self):
        buffer = io.BytesIO()
        send_message(buffer, {"op": "ping"})
        raw = bytearray(buffer.getvalue())
        raw[:4] = b"EVIL"
        with pytest.raises(ProtocolError, match="magic"):
            recv_message(io.BytesIO(bytes(raw)))

    def test_truncated_frame_rejected(self):
        buffer = io.BytesIO()
        send_message(buffer, {"op": "x"}, [np.arange(10, dtype=np.float64)])
        raw = buffer.getvalue()[:-8]
        with pytest.raises(ProtocolError, match="mid-message"):
            recv_message(io.BytesIO(raw))

    def test_object_dtype_refused(self):
        buffer = io.BytesIO()
        send_message(buffer, {"op": "x", "frames": []})
        # Hand-craft a header announcing a disallowed dtype.
        import json
        import struct

        header = json.dumps(
            {"op": "x", "frames": [{"dtype": "object", "shape": [1]}]}
        ).encode()
        raw = struct.pack(">4sBI", MAGIC, 1, len(header)) + header
        with pytest.raises(ProtocolError, match="dtype"):
            recv_message(io.BytesIO(raw))

    def test_overflowing_frame_shape_rejected(self):
        """A shape whose int64 product wraps must trip the size ceiling."""
        import json
        import struct

        header = json.dumps(
            {"op": "x", "frames": [{"dtype": "float64", "shape": [2**33, 2**33]}]}
        ).encode()
        raw = struct.pack(">4sBI", MAGIC, 1, len(header)) + header
        with pytest.raises(ProtocolError, match="exceeds the limit"):
            recv_message(io.BytesIO(raw))

    def test_unknown_op_rejected(self):
        service = SolverService()
        try:
            with pytest.raises(ProtocolError, match="unknown operation"):
                handle_request(service, {"op": "fry"}, [])
        finally:
            service.close()


class TestEndToEnd:
    @pytest.fixture()
    def served(self):
        service = SolverService(
            options=SympilerOptions(enable_vs_block=False),
            window_seconds=0.005,
            max_batch=8,
        )
        server, thread = serve_background(service)
        yield server.server_address, service
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def test_register_solve_roundtrip(self, served):
        address, _ = served
        A = laplacian_2d(8, shift=0.1)
        ref = SparseLinearSolver(
            A, ordering="natural", options=SympilerOptions(enable_vs_block=False)
        )
        with ServiceClient(address) as client:
            assert client.ping()
            handle = client.register_pattern(A)
            assert handle.n == A.n and handle.kernel == "cholesky"
            rhs = np.linspace(0.5, 1.5, A.n)
            x = client.solve(handle, A.data, rhs)
            assert np.array_equal(x, ref.solve(rhs))

    def test_solve_by_handle_id_string(self, served):
        address, _ = served
        A = laplacian_2d(7, shift=0.2)
        with ServiceClient(address) as client:
            handle = client.register_pattern(A)
            x = client.solve(handle.handle_id, A.data, np.ones(A.n))
            assert np.isfinite(x).all()

    def test_unknown_handle_maps_to_pattern_evicted(self, served):
        address, _ = served
        with ServiceClient(address) as client:
            with pytest.raises(PatternEvictedError):
                client.solve("deadbeefdeadbeef", np.ones(3), np.ones(3))

    def test_evict_over_the_wire(self, served):
        address, _ = served
        A = laplacian_2d(6, shift=0.1)
        with ServiceClient(address) as client:
            handle = client.register_pattern(A)
            assert client.evict(handle)
            assert not client.evict(handle)
            with pytest.raises(PatternEvictedError):
                client.solve(handle, A.data, np.ones(A.n))

    def test_stats_over_the_wire(self, served):
        address, _ = served
        A = fem_stencil_2d(6, shift=0.3)
        with ServiceClient(address) as client:
            handle = client.register_pattern(A)
            client.solve(handle, A.data, np.ones(A.n))
            stats = client.stats()
        assert stats["counters"]["solves_ok"] >= 1
        assert handle.handle_id in stats["patterns"]
        assert stats["registered_patterns"] >= 1

    def test_backpressure_maps_to_overloaded_error(self):
        service = SolverService(
            options=SympilerOptions(enable_vs_block=False),
            window_seconds=60.0,
            max_batch=64,
            max_in_flight=1,
            retry_after_seconds=0.125,
        )
        server, thread = serve_background(service)
        try:
            A = laplacian_2d(6, shift=0.1)
            with ServiceClient(server.server_address) as blocker, ServiceClient(
                server.server_address
            ) as client:
                handle = blocker.register_pattern(A)
                # Fill the single slot from a background thread (the call
                # blocks server-side until the coalescer window would fire).
                filler = threading.Thread(
                    target=lambda: blocker.solve(handle, A.data, np.ones(A.n)),
                    daemon=True,
                )
                filler.start()
                deadline = 50
                while service.admission.in_flight == 0 and deadline > 0:
                    import time

                    time.sleep(0.01)
                    deadline -= 1
                with pytest.raises(ServiceOverloadedError) as excinfo:
                    client.solve(handle, A.data, np.ones(A.n))
                assert excinfo.value.retry_after == 0.125
                # Drain the parked request now: closing the service flushes
                # the coalescer, letting the filler's solve (which holds the
                # blocker client's lock) complete instead of waiting out the
                # 60 s window.
                service.close()
                filler.join(timeout=10)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_options_roundtrip_and_unknown_fields_refused(self, served):
        address, _ = served
        A = laplacian_2d(9, shift=0.15)
        with ServiceClient(address) as client:
            handle = client.register_pattern(
                A, options=SympilerOptions(enable_vs_block=False)
            )
            assert handle.n == A.n
            from repro.service.errors import ProtocolError

            with pytest.raises(ProtocolError, match="no_such_option"):
                client.register_pattern(A, options={"no_such_option": True})

    def test_concurrent_clients_share_coalesced_batches(self, served):
        address, service = served
        A = laplacian_2d(9, shift=0.1)
        with ServiceClient(address) as control:
            handle = control.register_pattern(A)
        results = {}
        errors = []

        def drive(worker):
            try:
                with ServiceClient(address) as client:
                    scale = 1.0 + 0.01 * worker
                    results[worker] = (
                        client.solve(handle, A.data * scale, np.ones(A.n)) * scale
                    )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=drive, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors and len(results) == 8
        baseline = results[0]
        for x in results.values():
            assert np.allclose(x, baseline, atol=1e-8)
        assert service.metrics.count("solves_ok") >= 8

    def test_midcall_failure_poisons_a_v1_connection(self, served):
        """Under the legacy lock-step protocol a timeout/desync poisons the
        connection: without request ids the client cannot tell the stale
        response from the next call's, so reuse is refused."""
        address, _ = served
        A = laplacian_2d(6, shift=0.3)
        client = ServiceClient(address, timeout=30.0, protocol=1)
        try:
            assert client.protocol == 1
            handle = client.register_pattern(A)
            # Simulate a mid-call failure: a too-short read deadline while
            # the response is still in flight.
            client._sock.settimeout(0.000001)
            with pytest.raises(Exception):
                client.solve(handle, A.data, np.ones(A.n))
            client._sock.settimeout(30.0)
            with pytest.raises(RuntimeError, match="desynchronized"):
                client.ping()
        finally:
            client.close()

    def test_v2_timeout_orphans_only_that_request(self, served):
        """Under protocol v2 a timed-out solve is abandoned by id: the late
        response is discarded as an orphan and the connection stays usable
        — the desync-recovery fix."""
        address, _ = served
        A = laplacian_2d(6, shift=0.3)
        with ServiceClient(address, timeout=30.0, protocol=2) as client:
            assert client.protocol == 2
            handle = client.register_pattern(A)
            with pytest.raises(TimeoutError, match="abandoned"):
                client.solve(handle, A.data, np.ones(A.n), timeout=0.000001)
            # Same connection, next request: still works.
            x = client.solve(handle, A.data, np.ones(A.n))
            assert np.isfinite(x).all()
            assert client.ping()
            deadline = time.monotonic() + 5.0
            while client.orphaned_responses < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert client.orphaned_responses >= 1

    def test_shutdown_op_stops_the_server(self):
        service = SolverService(options=SympilerOptions(enable_vs_block=False))
        server, thread = serve_background(service)
        with ServiceClient(server.server_address) as client:
            client.shutdown_server()
        thread.join(timeout=10)
        assert not thread.is_alive()
        server.server_close()


class TestProtocolV2:
    """Negotiation, pipelining, and cross-generation compatibility."""

    @pytest.fixture()
    def served(self):
        service = SolverService(
            options=SympilerOptions(enable_vs_block=False),
            window_seconds=0.005,
            max_batch=16,
        )
        server, thread = serve_background(service)
        yield server.server_address, service
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def test_hello_negotiates_v2_by_default(self, served):
        address, _ = served
        with ServiceClient(address) as client:
            assert client.protocol == 2

    def test_hello_handled_in_process(self):
        service = SolverService(options=SympilerOptions(enable_vs_block=False))
        try:
            response, frames = handle_request(
                service, {"op": "hello", "versions": [1, 2]}, []
            )
            assert response["ok"] and response["version"] == 2
            assert frames == []
            # A hypothetical future-only client with no mutual version.
            with pytest.raises(ProtocolError, match="no mutual wire version"):
                handle_request(service, {"op": "hello", "versions": [99]}, [])
        finally:
            service.close()

    def test_v1_client_roundtrips_against_v2_server(self, served):
        """The compatibility guarantee: a pinned-v1 client (standing in for
        an old binary) registers and solves against the v2 server."""
        address, _ = served
        A = laplacian_2d(8, shift=0.1)
        ref = SparseLinearSolver(
            A, ordering="natural", options=SympilerOptions(enable_vs_block=False)
        )
        with ServiceClient(address, protocol=1) as client:
            assert client.protocol == 1
            assert client.ping()
            handle = client.register_pattern(A)
            x = client.solve(handle, A.data, np.linspace(0.5, 1.5, A.n))
            assert np.array_equal(x, ref.solve(np.linspace(0.5, 1.5, A.n)))

    def test_requiring_v2_is_refusable(self, served):
        # protocol=2 against this (v2) server succeeds...
        address, _ = served
        with ServiceClient(address, protocol=2) as client:
            assert client.protocol == 2
        # ...and an unsupported pin is rejected up front.
        with pytest.raises(ValueError, match="protocol"):
            ServiceClient(address, protocol=3)

    def test_pipelined_submits_roundtrip_bitwise(self, served):
        """Many in-flight submits on ONE connection, resolved out of band,
        each bitwise-identical to the lock-step answer."""
        address, service = served
        A = laplacian_2d(9, shift=0.1)
        ref = SparseLinearSolver(
            A, ordering="natural", options=SympilerOptions(enable_vs_block=False)
        )
        with ServiceClient(address) as client:
            handle = client.register_pattern(A)
            rhss = [np.linspace(0.1, 1.0 + w, A.n) for w in range(24)]
            futures = [client.submit(handle, A.data, rhs) for rhs in rhss]
            for rhs, future in zip(rhss, futures):
                x = client.result(future, timeout=60)
                assert np.array_equal(x, ref.solve(rhs))
        # A single connection fed the coalescing window: at least one batch
        # carried more than one request.
        assert service.metrics.count("solves_ok") >= 24

    def test_v1_submit_degrades_to_resolved_future(self, served):
        address, _ = served
        A = laplacian_2d(7, shift=0.2)
        with ServiceClient(address, protocol=1) as client:
            handle = client.register_pattern(A)
            future = client.submit(handle, A.data, np.ones(A.n))
            assert future.done()
            assert np.isfinite(client.result(future)).all()

    def test_submit_error_lands_in_the_future_not_the_connection(self, served):
        address, _ = served
        A = laplacian_2d(6, shift=0.2)
        with ServiceClient(address) as client:
            handle = client.register_pattern(A)
            bad = client.submit("deadbeefdeadbeef", np.ones(3), np.ones(3))
            with pytest.raises(PatternEvictedError):
                client.result(bad, timeout=30)
            # The connection is unaffected.
            good = client.submit(handle, A.data, np.ones(A.n))
            assert np.isfinite(client.result(good, timeout=30)).all()

    def test_close_fails_pending_futures(self, served):
        from repro.service.errors import ShardUnavailableError

        address, service = served
        A = laplacian_2d(6, shift=0.2)
        client = ServiceClient(address)
        handle = client.register_pattern(A)
        # Park a request behind a long coalescing window, then close.
        service.coalescer.window_seconds = 60.0
        future = client.submit(handle, A.data, np.ones(A.n))
        client.close()
        with pytest.raises(ShardUnavailableError):
            future.result(timeout=10)
        service.coalescer.window_seconds = 0.005
