"""Tests for the elimination tree."""

import numpy as np
import pytest

from repro.baselines.scipy_reference import reference_cholesky
from repro.sparse.csc import CSCMatrix
from repro.sparse.utils import lower_triangle
from repro.symbolic.etree import (
    EliminationTree,
    child_counts,
    elimination_tree,
    first_children,
    postorder,
    tree_depths,
)


def _brute_force_parent(A):
    """parent[j] = min{i > j : L[i, j] != 0} from the dense numeric factor."""
    L = reference_cholesky(A)
    n = L.shape[0]
    parent = np.full(n, -1, dtype=np.int64)
    for j in range(n):
        below = np.nonzero(np.abs(L[j + 1 :, j]) > 1e-12)[0]
        if below.size:
            parent[j] = j + 1 + below[0]
    return parent


def test_parent_matches_brute_force(spd_matrix):
    parent = elimination_tree(spd_matrix)
    np.testing.assert_array_equal(parent, _brute_force_parent(spd_matrix))


def test_parent_is_strictly_greater_than_child(spd_matrix):
    parent = elimination_tree(spd_matrix)
    for j, p in enumerate(parent):
        assert p == -1 or p > j


def test_etree_accepts_lower_triangular_storage(spd_matrix):
    full_parent = elimination_tree(spd_matrix)
    lower_parent = elimination_tree(lower_triangle(spd_matrix))
    np.testing.assert_array_equal(full_parent, lower_parent)


def test_etree_of_diagonal_matrix_is_a_forest_of_roots():
    A = CSCMatrix.identity(5)
    parent = elimination_tree(A)
    assert np.all(parent == -1)


def test_etree_of_tridiagonal_matrix_is_a_chain():
    dense = np.diag(np.full(6, 4.0)) + np.diag(np.full(5, -1.0), 1) + np.diag(np.full(5, -1.0), -1)
    parent = elimination_tree(CSCMatrix.from_dense(dense))
    np.testing.assert_array_equal(parent, [1, 2, 3, 4, 5, -1])


def test_etree_requires_square():
    with pytest.raises(ValueError):
        elimination_tree(CSCMatrix.from_dense(np.ones((2, 3))))


def test_postorder_is_a_permutation_and_respects_children(spd_matrix):
    parent = elimination_tree(spd_matrix)
    post = postorder(parent)
    assert sorted(post.tolist()) == list(range(parent.size))
    position = np.empty(parent.size, dtype=np.int64)
    position[post] = np.arange(parent.size)
    for j, p in enumerate(parent):
        if p != -1:
            assert position[j] < position[p]


def test_postorder_rejects_cycles():
    with pytest.raises(ValueError):
        postorder(np.array([1, 0]))


def test_child_counts_and_children_lists(spd_matrix):
    parent = elimination_tree(spd_matrix)
    counts = child_counts(parent)
    children = first_children(parent)
    for j in range(parent.size):
        assert counts[j] == len(children[j])
        for c in children[j]:
            assert parent[c] == j


def test_tree_depths(spd_matrix):
    parent = elimination_tree(spd_matrix)
    depth = tree_depths(parent)
    for j, p in enumerate(parent):
        if p == -1:
            assert depth[j] == 0 or depth[j] >= 0
        else:
            assert depth[j] == depth[p] + 1


def test_elimination_tree_dataclass(spd_matrices):
    A = spd_matrices["fem"]
    tree = EliminationTree.from_matrix(A)
    assert tree.n == A.n
    roots = tree.roots()
    assert roots.size >= 1
    for r in roots:
        assert tree.parent[r] == -1
    # Path to root ends at a root.
    path = tree.path_to_root(0)
    assert tree.parent[path[-1]] == -1
    assert tree.n_children(int(roots[0])) == len(tree.children[int(roots[0])])
    assert tree.depths().min() == 0
