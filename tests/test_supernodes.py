"""Tests for supernode detection."""

import numpy as np
import pytest

from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import block_tridiagonal_spd
from repro.symbolic.colcount import column_counts_of_factor
from repro.symbolic.etree import child_counts, elimination_tree
from repro.symbolic.supernodes import (
    SupernodePartition,
    cholesky_supernodes,
    supernodes_from_boundaries,
    triangular_supernodes,
)


def test_partition_validation():
    with pytest.raises(ValueError):
        SupernodePartition(
            super_ptr=np.array([1, 3]), col_to_super=np.array([0, 0, 0])
        )
    with pytest.raises(ValueError):
        SupernodePartition(
            super_ptr=np.array([0, 2, 2]), col_to_super=np.array([0, 0])
        )
    with pytest.raises(ValueError):
        SupernodePartition(
            super_ptr=np.array([0, 2]), col_to_super=np.array([0, 0, 0])
        )


def test_partition_accessors():
    p = supernodes_from_boundaries([0, 2, 3], 6)
    assert p.n_columns == 6
    assert p.n_supernodes == 3
    assert p.columns(0) == (0, 2)
    assert p.columns(2) == (3, 6)
    assert p.width(2) == 3
    np.testing.assert_array_equal(p.sizes(), [2, 1, 3])
    assert p.average_size() == pytest.approx(2.0)
    assert p.max_size() == 3
    assert p.supernode_of(4) == 2
    assert not p.is_trivial()
    with pytest.raises(IndexError):
        p.columns(5)


def test_boundaries_must_start_at_zero():
    with pytest.raises(ValueError):
        supernodes_from_boundaries([1, 3], 5)


def test_iter_supernodes_covers_all_columns():
    p = supernodes_from_boundaries([0, 1, 4], 7)
    covered = []
    for s, c0, c1 in p.iter_supernodes():
        covered.extend(range(c0, c1))
        assert p.width(s) == c1 - c0
    assert covered == list(range(7))


def test_triangular_supernodes_require_identical_structure(lower_factors):
    for L in lower_factors.values():
        partition = triangular_supernodes(L)
        assert partition.n_columns == L.n
        for s, c0, c1 in partition.iter_supernodes():
            base_rows = L.col_rows(c0)
            for j in range(c0 + 1, c1):
                expected = base_rows[base_rows >= j]
                np.testing.assert_array_equal(L.col_rows(j), expected)


def test_triangular_supernodes_are_maximal(lower_factors):
    # Adjacent supernodes must not be mergeable (otherwise detection is not
    # maximal): the last column of one and the first of the next differ.
    for L in lower_factors.values():
        partition = triangular_supernodes(L)
        for s in range(partition.n_supernodes - 1):
            _, end = partition.columns(s)
            prev = end - 1
            rows_prev = L.col_rows(prev)
            rows_next = L.col_rows(end)
            mergeable = np.array_equal(rows_prev[rows_prev > prev], rows_next)
            assert not mergeable


def test_triangular_supernodes_reject_non_lower():
    U = CSCMatrix.from_dense(np.array([[1.0, 2.0], [0.0, 1.0]]))
    with pytest.raises(ValueError):
        triangular_supernodes(U)


def test_cholesky_supernodes_satisfy_merging_rule(spd_matrix):
    # The etree/colcount rule of §3.2: inside a supernode every column's count
    # is one less than its predecessor's and the predecessor is its only child.
    parent = elimination_tree(spd_matrix)
    counts = column_counts_of_factor(spd_matrix, parent)
    partition = cholesky_supernodes(counts, parent)
    assert partition.n_columns == spd_matrix.n
    for s, c0, c1 in partition.iter_supernodes():
        for j in range(c0 + 1, c1):
            assert counts[j] == counts[j - 1] - 1
            assert parent[j - 1] == j


def test_cholesky_supernodes_on_block_matrix_are_wide():
    A = block_tridiagonal_spd(5, 8, seed=0, dense_coupling=True)
    parent = elimination_tree(A)
    counts = column_counts_of_factor(A, parent)
    partition = cholesky_supernodes(counts, parent)
    assert partition.max_size() >= 8


def test_cholesky_supernodes_max_width_cap():
    A = block_tridiagonal_spd(5, 8, seed=0, dense_coupling=True)
    parent = elimination_tree(A)
    counts = column_counts_of_factor(A, parent)
    capped = cholesky_supernodes(counts, parent, max_width=4)
    assert capped.max_size() <= 4
    uncapped = cholesky_supernodes(counts, parent)
    assert uncapped.n_supernodes <= capped.n_supernodes


def test_cholesky_supernodes_identity_matrix_all_singletons():
    A = CSCMatrix.identity(5)
    parent = elimination_tree(A)
    counts = column_counts_of_factor(A, parent)
    partition = cholesky_supernodes(counts, parent)
    # All columns have equal count (1) but no etree edges, so no merging.
    assert partition.n_supernodes == 5
    assert partition.is_trivial()


def test_cholesky_supernodes_input_validation():
    with pytest.raises(ValueError):
        cholesky_supernodes(np.array([1, 1]), np.array([-1]))


def test_empty_partitions():
    empty_tri = triangular_supernodes(CSCMatrix.empty(0, 0))
    assert empty_tri.n_supernodes == 0
    empty_chol = cholesky_supernodes(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
    assert empty_chol.n_columns == 0
