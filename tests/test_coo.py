"""Tests for the COO container and the triplet builder."""

import numpy as np
import pytest

from repro.sparse.coo import COOMatrix, TripletBuilder


def test_coo_basic_properties():
    coo = COOMatrix(3, 4, [0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0])
    assert coo.shape == (3, 4)
    assert coo.nnz == 3


def test_coo_rejects_mismatched_lengths():
    with pytest.raises(ValueError):
        COOMatrix(3, 3, [0, 1], [1], [1.0, 2.0])


def test_coo_rejects_out_of_range_indices():
    with pytest.raises(ValueError):
        COOMatrix(2, 2, [0, 2], [0, 1], [1.0, 1.0])
    with pytest.raises(ValueError):
        COOMatrix(2, 2, [0, 1], [0, 5], [1.0, 1.0])


def test_coo_rejects_negative_indices():
    with pytest.raises(ValueError):
        COOMatrix(2, 2, [-1, 1], [0, 1], [1.0, 1.0])


def test_coo_rejects_negative_dimensions():
    with pytest.raises(ValueError):
        COOMatrix(-1, 2, [], [], [])


def test_coo_rejects_2d_arrays():
    with pytest.raises(ValueError):
        COOMatrix(2, 2, [[0], [1]], [[0], [1]], [[1.0], [1.0]])


def test_coo_to_dense_sums_duplicates():
    coo = COOMatrix(2, 2, [0, 0, 1], [0, 0, 1], [1.0, 2.5, 4.0])
    dense = coo.to_dense()
    assert dense[0, 0] == pytest.approx(3.5)
    assert dense[1, 1] == pytest.approx(4.0)


def test_coo_to_csc_sums_duplicates():
    coo = COOMatrix(3, 3, [0, 0, 2, 2], [1, 1, 0, 0], [1.0, 1.0, 2.0, 3.0])
    csc = coo.to_csc()
    assert csc.nnz == 2
    assert csc.get(0, 1) == pytest.approx(2.0)
    assert csc.get(2, 0) == pytest.approx(5.0)


def test_coo_transpose_swaps_indices():
    coo = COOMatrix(2, 3, [0, 1], [2, 0], [5.0, 7.0])
    t = coo.transpose()
    assert t.shape == (3, 2)
    np.testing.assert_array_equal(t.rows, coo.cols)
    np.testing.assert_array_equal(t.cols, coo.rows)


def test_coo_empty_matrix():
    coo = COOMatrix(4, 4, [], [], [])
    assert coo.nnz == 0
    assert np.all(coo.to_dense() == 0.0)
    assert coo.to_csc().nnz == 0


def test_builder_add_and_convert():
    b = TripletBuilder(3, 3)
    b.add(0, 0, 1.0)
    b.add(1, 2, -2.0)
    assert b.nnz == 2
    csc = b.to_csc()
    assert csc.get(0, 0) == pytest.approx(1.0)
    assert csc.get(1, 2) == pytest.approx(-2.0)


def test_builder_bounds_checking():
    b = TripletBuilder(2, 2)
    with pytest.raises(IndexError):
        b.add(2, 0, 1.0)
    with pytest.raises(IndexError):
        b.add(0, -1, 1.0)


def test_builder_rejects_negative_shape():
    with pytest.raises(ValueError):
        TripletBuilder(-1, 3)


def test_builder_add_many():
    b = TripletBuilder(4, 4)
    b.add_many([0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0])
    assert b.nnz == 3
    dense = b.to_coo().to_dense()
    assert dense[1, 2] == pytest.approx(2.0)


def test_builder_add_many_mismatched_lengths():
    b = TripletBuilder(4, 4)
    with pytest.raises(ValueError):
        b.add_many([0, 1], [1], [1.0, 2.0])


def test_builder_add_many_bounds():
    b = TripletBuilder(2, 2)
    with pytest.raises(IndexError):
        b.add_many([0, 3], [0, 1], [1.0, 1.0])


def test_builder_add_symmetric_mirrors_offdiagonal():
    b = TripletBuilder(3, 3)
    b.add_symmetric(2, 0, -1.5)
    dense = b.to_coo().to_dense()
    assert dense[2, 0] == pytest.approx(-1.5)
    assert dense[0, 2] == pytest.approx(-1.5)


def test_builder_add_symmetric_diagonal_once():
    b = TripletBuilder(3, 3)
    b.add_symmetric(1, 1, 4.0)
    assert b.nnz == 1
    assert b.to_coo().to_dense()[1, 1] == pytest.approx(4.0)


def test_builder_duplicates_summed_on_conversion():
    b = TripletBuilder(2, 2)
    b.add(0, 0, 1.0)
    b.add(0, 0, 2.0)
    assert b.to_csc().get(0, 0) == pytest.approx(3.0)
