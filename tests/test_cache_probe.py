"""Tests for the cold/warm cache probe backing the CI zero-recompile check."""

import json

import pytest

from repro.compiler.cache_probe import main, run_probe
from repro.compiler.codegen.c_backend import c_compiler_available

needs_cc = pytest.mark.skipif(
    not c_compiler_available("cc"), reason="no C compiler available"
)


def test_probe_python_backend_reports_workload(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SYMPILER_CACHE", str(tmp_path))
    report = run_probe(backend="python")
    assert report["backend"] == "python"
    assert all(report["workload"].values())
    # The python backend never invokes the C toolchain...
    assert report["so_compiles"] == 0 and report["so_reuses"] == 0
    # ...but it persists its generated sources for cross-process sharing.
    assert report["py_writes"] > 0 and report["py_reuses"] == 0
    # Second probe in the same cache directory: every module is loaded back.
    warm = run_probe(backend="python")
    assert warm["py_writes"] == 0
    assert warm["py_reuses"] == report["py_writes"]


@needs_cc
def test_probe_cold_then_warm_counters(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SYMPILER_CACHE", str(tmp_path))
    cold = run_probe(backend="c")
    assert all(cold["workload"].values())
    assert cold["so_compiles"] > 0
    # Second probe against the populated directory: zero recompiles — the
    # exact property the CI warm step asserts across processes.
    warm = run_probe(backend="c")
    assert warm["so_compiles"] == 0
    assert warm["so_reuses"] == cold["so_compiles"] + cold["so_reuses"]


@needs_cc
def test_probe_cli_assert_warm(monkeypatch, tmp_path, capsys):
    monkeypatch.setenv("REPRO_SYMPILER_CACHE", str(tmp_path))
    assert main([]) == 0  # cold populate
    capsys.readouterr()
    assert main(["--assert-warm"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["asserted_warm"] is True
    assert report["so_compiles"] == 0


def test_probe_cli_python_backend(monkeypatch, tmp_path, capsys):
    monkeypatch.setenv("REPRO_SYMPILER_CACHE", str(tmp_path))
    # A cold python-backend run regenerates everything, so --assert-warm
    # must fail — the zero-regeneration invariant is no longer vacuous for
    # toolchain-free environments.
    assert main(["--backend", "python", "--assert-warm"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["backend"] == "python"
    assert all(report["workload"].values())
    assert report["py_writes"] > 0
    # Against the populated cache the warm assertion passes.
    assert main(["--backend", "python", "--assert-warm"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["py_writes"] == 0 and report["py_reuses"] > 0
