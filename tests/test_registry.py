"""Tests for the kernel registry and the pattern-keyed artifact cache."""

import numpy as np
import pytest

from repro.compiler.artifacts import (
    PatternMismatchError,
    SympiledCholesky,
    SympiledLDLT,
    SympiledTriangularSolve,
)
from repro.compiler.cache import ArtifactCache, cache_key, options_fingerprint
from repro.compiler.lowering import lower_cholesky
from repro.compiler.options import SympilerOptions
from repro.compiler.registry import (
    DuplicateKernelError,
    KernelRegistry,
    KernelSpec,
    UnknownKernelError,
    default_registry,
    kernel_spec,
    registered_kernels,
)
from repro.compiler.sympiler import Sympiler
from repro.sparse.generators import laplacian_2d, saddle_point_indefinite, sparse_rhs
from repro.symbolic.inspector import CholeskyInspector, register_inspector


def fresh_sympiler(options=None):
    """A Sympiler with an isolated cache (tests must not share hit counters)."""
    return Sympiler(options, cache=ArtifactCache())


class TestRegistry:
    def test_builtin_kernels_are_registered(self):
        names = registered_kernels()
        assert names == ("cholesky", "ic0", "ilu0", "ldlt", "lu", "triangular-solve")

    def test_aliases_resolve_to_the_same_spec(self):
        assert kernel_spec("trisolve") is kernel_spec("triangular-solve")
        assert kernel_spec("triangular") is kernel_spec("triangular-solve")
        assert kernel_spec("ldl") is kernel_spec("ldlt")

    def test_spec_declares_pipeline_ingredients(self):
        spec = kernel_spec("cholesky")
        assert spec.runtime_signature == ("Ap", "Ai", "Ax")
        assert spec.transforms == ("vs-block", "vi-prune")
        assert spec.requires_vi_prune is True
        assert spec.artifact_cls is SympiledCholesky
        tri = kernel_spec("triangular-solve")
        assert tri.runtime_signature == ("Lp", "Li", "Lx", "b")
        assert tri.requires_vi_prune is False
        assert tri.artifact_cls is SympiledTriangularSolve
        assert kernel_spec("ldlt").artifact_cls is SympiledLDLT

    def test_duplicate_registration_raises(self):
        registry = KernelRegistry()
        spec = kernel_spec("cholesky")
        registry.register(spec)
        clone = KernelSpec(
            name="cholesky",
            lower=lower_cholesky,
            inspector_cls=CholeskyInspector,
            artifact_cls=SympiledCholesky,
            runtime_signature=("Ap", "Ai", "Ax"),
        )
        with pytest.raises(DuplicateKernelError):
            registry.register(clone)
        # Re-registering the identical spec object is a no-op.
        registry.register(spec)
        assert len(registry) == 1

    def test_alias_collision_raises(self):
        registry = KernelRegistry()
        registry.register(kernel_spec("triangular-solve"))
        colliding = KernelSpec(
            name="other",
            lower=lower_cholesky,
            inspector_cls=CholeskyInspector,
            artifact_cls=SympiledCholesky,
            runtime_signature=("Ap", "Ai", "Ax"),
            aliases=("trisolve",),
        )
        with pytest.raises(DuplicateKernelError):
            registry.register(colliding)

    def test_unknown_kernel_error_lists_available(self):
        with pytest.raises(UnknownKernelError, match="cholesky"):
            default_registry().resolve("qr")

    def test_compile_rejects_unknown_kernel(self):
        with pytest.raises(UnknownKernelError):
            fresh_sympiler().compile("qr", laplacian_2d(4))

    def test_compile_rejects_undeclared_kernel_args(self):
        sym = fresh_sympiler()
        with pytest.raises(TypeError, match="rhs_pattern"):
            sym.compile("cholesky", laplacian_2d(4), rhs_pattern=[0])

    def test_custom_registry_is_honoured(self):
        registry = KernelRegistry()
        registry.register(kernel_spec("cholesky"))
        sym = Sympiler(registry=registry, cache=ArtifactCache())
        A = laplacian_2d(5)
        assert sym.compile("cholesky", A).factor_nnz > 0
        with pytest.raises(UnknownKernelError):
            sym.compile("triangular-solve", A)

    def test_register_inspector_conflict(self):
        class Impostor(CholeskyInspector):
            method = "cholesky"

        with pytest.raises(ValueError):
            register_inspector(Impostor)
        # Same class again is fine.
        register_inspector(CholeskyInspector)

    def test_register_inspector_failed_alias_leaves_no_partial_state(self):
        from repro.symbolic.inspector import _INSPECTORS, inspector_for_method

        class Newcomer(CholeskyInspector):
            method = "newcomer"

        with pytest.raises(ValueError):
            register_inspector(Newcomer, aliases=("cholesky",))
        assert "newcomer" not in _INSPECTORS
        with pytest.raises(ValueError):
            inspector_for_method("newcomer")

    def test_backend_method_registration_is_identity_idempotent(self):
        from repro.compiler.codegen.python_backend import (
            _PY_METHOD_SPECS,
            PythonMethodSpec,
            register_python_method,
        )

        # Re-registering the exact same spec object is a no-op...
        register_python_method("ldlt", _PY_METHOD_SPECS["ldlt"])
        # ...but an equivalent-looking new object conflicts loudly.
        clone = PythonMethodSpec(params="Ap, Ai, Ax", result="(Lx, D)")
        with pytest.raises(ValueError, match="already registered"):
            register_python_method("ldlt", clone)


class TestGenericCompile:
    def test_generic_compile_matches_wrappers(self, spd_matrices):
        A = spd_matrices["fem"]
        sym = fresh_sympiler()
        via_generic = sym.compile("cholesky", A)
        via_wrapper = sym.compile_cholesky(A)
        assert via_wrapper is via_generic  # same pattern+options -> cache hit

    def test_all_three_kernels_compile_through_one_path(self, lower_factors):
        sym = fresh_sympiler()
        A = laplacian_2d(6)
        chol = sym.compile("cholesky", A)
        ldlt = sym.compile("ldlt", A)
        tri = sym.compile("triangular-solve", lower_factors["fem"])
        assert isinstance(chol, SympiledCholesky)
        assert isinstance(ldlt, SympiledLDLT)
        assert isinstance(tri, SympiledTriangularSolve)

    def test_pattern_mismatch_for_all_three_kernels(self, spd_matrices, lower_factors):
        sym = fresh_sympiler()
        chol = sym.compile("cholesky", spd_matrices["fem"])
        with pytest.raises(PatternMismatchError):
            chol.verify_pattern(spd_matrices["banded"])
        ldlt = sym.compile("ldlt", spd_matrices["fem"])
        with pytest.raises(PatternMismatchError):
            ldlt.verify_pattern(spd_matrices["banded"])
        tri = sym.compile("triangular-solve", lower_factors["fem"])
        with pytest.raises(PatternMismatchError):
            tri.verify_pattern(lower_factors["banded"])
        # The matching pattern passes.
        chol.verify_pattern(spd_matrices["fem"])
        ldlt.verify_pattern(spd_matrices["fem"])
        tri.verify_pattern(lower_factors["fem"])


class TestArtifactCache:
    def test_second_compile_is_a_cache_hit(self):
        sym = fresh_sympiler()
        A = laplacian_2d(7)
        first = sym.compile("cholesky", A)
        assert sym.cache_stats.misses == 1 and sym.cache_stats.hits == 0
        second = sym.compile("cholesky", A)
        assert second is first
        assert sym.cache_stats.hits == 1 and sym.cache_stats.misses == 1
        # No inspection/codegen cost re-incurred: the timings object is the
        # one recorded at first compile, by identity.
        assert second.timings is first.timings

    def test_cache_hit_on_equal_but_distinct_matrix_object(self):
        sym = fresh_sympiler()
        A = saddle_point_indefinite(15, 5, seed=2)
        first = sym.compile("ldlt", A)
        B = A.copy()
        B.data *= 3.0  # same pattern, different values
        second = sym.compile("ldlt", B)
        assert second is first

    def test_options_hash_invalidates(self):
        sym = fresh_sympiler()
        A = laplacian_2d(7)
        full = sym.compile("cholesky", A, options=SympilerOptions())
        ablated = sym.compile("cholesky", A, options=SympilerOptions.vi_prune_only())
        assert ablated is not full
        assert sym.cache_stats.misses == 2
        assert options_fingerprint(SympilerOptions()) != options_fingerprint(
            SympilerOptions.vi_prune_only()
        )

    def test_kernel_name_is_part_of_the_key(self):
        sym = fresh_sympiler()
        A = laplacian_2d(6)
        chol = sym.compile("cholesky", A)
        ldlt = sym.compile("ldlt", A)
        assert chol is not ldlt
        assert sym.cache_stats.misses == 2

    def test_one_shot_iterable_rhs_pattern_is_consumed_once(self, lower_factors):
        # A generator must yield the same kernel (and cache entry) as a list.
        sym = fresh_sympiler()
        L = lower_factors["fem"]
        via_generator = sym.compile(
            "triangular-solve", L, rhs_pattern=(i for i in [0, 3])
        )
        assert via_generator.reach_size == sym.compile(
            "triangular-solve", L, rhs_pattern=[0, 3]
        ).reach_size
        assert via_generator.reach_size > 0
        assert sym.compile("triangular-solve", L, rhs_pattern=[0, 3]) is via_generator

    def test_out_of_range_rhs_fails_even_on_a_warm_cache(self, lower_factors):
        sym = fresh_sympiler()
        L = lower_factors["fem"]
        sym.compile("triangular-solve", L)  # warm the dense entry
        bad = list(range(L.n - 1)) + [L.n + 5]  # n unique indices, one invalid
        with pytest.raises(IndexError):
            sym.compile("triangular-solve", L, rhs_pattern=bad)

    def test_same_name_in_different_registries_does_not_alias(self):
        import dataclasses

        A = laplacian_2d(6)
        shared = ArtifactCache()
        default_sym = Sympiler(cache=shared)
        baseline = default_sym.compile("cholesky", A)
        custom = KernelRegistry()
        custom.register(
            dataclasses.replace(kernel_spec("cholesky"), transforms=("vi-prune",))
        )
        custom_sym = Sympiler(registry=custom, cache=shared)
        restricted = custom_sym.compile("cholesky", A)
        assert restricted is not baseline
        assert "vs-block" in baseline.applied_transformations
        assert "vs-block" not in restricted.applied_transformations

    def test_rhs_pattern_is_part_of_the_fingerprint(self, lower_factors):
        sym = fresh_sympiler()
        L = lower_factors["fem"]
        one = sym.compile("triangular-solve", L, rhs_pattern=[0])
        other = sym.compile("triangular-solve", L, rhs_pattern=[1])
        dense = sym.compile("triangular-solve", L)
        assert one is not other and one is not dense
        # Normalization: duplicated/unsorted indices hit the same entry.
        again = sym.compile("triangular-solve", L, rhs_pattern=[0, 0])
        assert again is one

    def test_lru_eviction(self):
        cache = ArtifactCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_cache_clear_and_stats(self):
        cache = ArtifactCache()
        key = cache_key("cholesky", "fp", SympilerOptions())
        cache.put(key, object())
        assert key in cache and len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        cache.reset_stats()
        assert cache.stats.lookups == 0 and cache.stats.hit_rate == 0.0

    def test_forced_vi_prune_does_not_alias_explicit_options(self, spd_matrices):
        # baseline() (VI-Prune forced on) and vi_prune_only() generate the
        # same code but record different decisions; they must not collide.
        sym = fresh_sympiler()
        A = spd_matrices["circuit"]
        forced = sym.compile("cholesky", A, options=SympilerOptions.baseline())
        explicit = sym.compile("cholesky", A, options=SympilerOptions.vi_prune_only())
        assert forced is not explicit
        assert forced.decisions.get("vi-prune-forced") is True
        assert "vi-prune-forced" not in explicit.decisions

    def test_solver_reuses_cached_kernels_across_refactorizations(self):
        from repro.solvers.linear_solver import SparseLinearSolver

        A = laplacian_2d(8)
        solver = SparseLinearSolver(A, ordering="mindeg")
        lookups_after_setup = solver.cache_stats.lookups
        A2 = A.copy()
        A2.data *= 4.0
        solver.factorize(A2)
        # Refactorization on the same pattern triggers no compiles at all —
        # not even cache lookups (fingerprinting is off the hot path).
        assert solver.cache_stats.lookups == lookups_after_setup
        b = np.ones(A.n)
        x = solver.solve(b)
        assert solver.residual(x, b) < 1e-8

    def test_second_solver_instance_hits_the_shared_cache(self):
        from repro.solvers.linear_solver import SparseLinearSolver

        A = laplacian_2d(8)
        first = SparseLinearSolver(A, ordering="mindeg")
        hits0, misses0 = first.cache_stats.hits, first.cache_stats.misses
        second = SparseLinearSolver(A, ordering="mindeg")
        # Same pattern + options: every compile of the second solver
        # (factorization, forward and backward sweeps) is a cache hit.
        assert second.cache_stats.misses == misses0
        assert second.cache_stats.hits == hits0 + 3
        b = np.ones(A.n)
        assert second.residual(second.solve(b), b) < 1e-8


class TestNoKernelBranchesInDriver:
    def test_sympiler_compile_has_no_kernel_specific_branches(self):
        """The driver must stay generic: adding a kernel = registering a spec."""
        import inspect

        from repro.compiler import sympiler as driver_module

        source = inspect.getsource(driver_module.Sympiler.compile)
        for kernel_name in registered_kernels():
            assert f"'{kernel_name}'" not in source
            assert f'"{kernel_name}"' not in source

    def test_lu_registration_left_driver_and_cache_untouched(self):
        """LU must integrate through the method tables alone (the PR-2 claim).

        ``Sympiler.compile`` and the artifact cache must contain no LU-specific
        branch: the only integration points are the registry spec, the
        transform handler tables and the backend method-spec tables.
        """
        import inspect

        from repro.compiler import cache as cache_module
        from repro.compiler import sympiler as driver_module
        from repro.compiler.codegen.c_backend import _C_METHOD_SPECS
        from repro.compiler.codegen.python_backend import _PY_METHOD_SPECS
        from repro.compiler.transforms.vi_prune import VIPruneTransform
        from repro.compiler.transforms.vs_block import VSBlockTransform

        for module in (driver_module, cache_module):
            source = inspect.getsource(module)
            assert '"lu"' not in source and "'lu'" not in source, (
                f"{module.__name__} must not special-case the lu kernel"
            )
        # The declared integration points, and nothing else, know about lu.
        assert kernel_spec("lu").name == "lu"
        assert "lu" in _PY_METHOD_SPECS and "lu" in _C_METHOD_SPECS
        assert "lu" in VIPruneTransform.handlers and "lu" in VSBlockTransform.handlers

    def test_ic0_ilu0_registration_left_driver_and_cache_untouched(self):
        """IC0/ILU0 must integrate through the method tables alone (PR 4).

        ``Sympiler.compile`` and the artifact cache must contain no
        incomplete-kernel-specific branch: the only integration points are
        the registry specs, the transform handler tables and the backend
        method-spec tables — the same invariance PR 2 asserted for LU.
        """
        import inspect

        from repro.compiler import cache as cache_module
        from repro.compiler import sympiler as driver_module
        from repro.compiler.codegen.c_backend import _C_METHOD_SPECS
        from repro.compiler.codegen.python_backend import _PY_METHOD_SPECS
        from repro.compiler.transforms.vi_prune import VIPruneTransform
        from repro.compiler.transforms.vs_block import VSBlockTransform

        for module in (driver_module, cache_module):
            source = inspect.getsource(module)
            for kernel in ("ic0", "ilu0"):
                assert f'"{kernel}"' not in source and f"'{kernel}'" not in source, (
                    f"{module.__name__} must not special-case the {kernel} kernel"
                )
        # The declared integration points, and nothing else, know about them.
        for kernel in ("ic0", "ilu0"):
            assert kernel_spec(kernel).name == kernel
            assert kernel in _PY_METHOD_SPECS and kernel in _C_METHOD_SPECS
            assert kernel in VIPruneTransform.handlers
            assert kernel in VSBlockTransform.handlers

    def test_incomplete_kernels_share_the_artifact_cache(self):
        from repro.compiler.cache import ArtifactCache
        from repro.compiler.sympiler import Sympiler
        from repro.sparse.generators import laplacian_2d

        A = laplacian_2d(7, shift=0.1)
        sym = Sympiler(cache=ArtifactCache())
        first = sym.compile("ic0", A)
        hits0, misses0 = sym.cache_stats.hits, sym.cache_stats.misses
        assert sym.compile("ic0", A) is first
        assert sym.cache_stats.hits == hits0 + 1
        assert sym.cache_stats.misses == misses0

    def test_two_lu_solvers_share_one_compiled_artifact(self):
        from repro.solvers.linear_solver import SparseLinearSolver
        from repro.sparse.generators import unsymmetric_diag_dominant

        A = unsymmetric_diag_dominant(40, seed=77)
        first = SparseLinearSolver(A, method="lu", ordering="mindeg")
        hits0, misses0 = first.cache_stats.hits, first.cache_stats.misses
        second = SparseLinearSolver(A, method="lu", ordering="mindeg")
        # Same pattern + options: the factorization and both triangular
        # sweeps (L-solve and U-solve) of the second solver are cache hits.
        assert second.cache_stats.misses == misses0
        assert second.cache_stats.hits == hits0 + 3
        assert second._factorization is first._factorization
        b = np.ones(A.n)
        assert second.residual(second.solve(b), b) < 1e-8

    def test_rhs_normalization_matches_inspector(self, lower_factors):
        # The spec's fingerprint hook and the artifact's verify_pattern (which
        # uses the inspector's normalized rhs) must agree.
        sym = fresh_sympiler()
        L = lower_factors["banded"]
        b = sparse_rhs(L.n, nnz=3, seed=5)
        compiled = sym.compile(
            "triangular-solve", L, rhs_pattern=np.nonzero(b)[0]
        )
        compiled.verify_pattern(L)  # does not raise
