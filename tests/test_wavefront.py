"""Wavefront (level-parallel) kernel execution: identity, fallback, plumbing.

The codegen-level contract of the wavefront backend: a wavefront-compiled
kernel produces **bitwise identical** results to its serial twin at any
thread count, keys separately in the artifact cache, and declines to
parallelize (serial fallback behind the same ABI) when the schedule is too
deep to pay for barriers.  ``test_runtime_levels`` already proves schedules
are antichains of the dependency graphs; here the properties are checked on
the *compiled artifacts* — per-level write sets are disjoint (each column is
written by exactly one level), and the generated parallel entry reproduces
the serial bits across all five factorization kinds and both triangular
sweeps of a full solve.
"""

import numpy as np
import pytest

from repro.compiler.cache import ArtifactCache, options_fingerprint
from repro.compiler.codegen.c_backend import c_compiler_available
from repro.compiler.options import SympilerOptions
from repro.compiler.sympiler import Sympiler
from repro.runtime.engine import BatchExecutor, resolve_num_threads
from repro.solvers.linear_solver import SparseLinearSolver
from repro.sparse.generators import (
    laplacian_2d,
    saddle_point_indefinite,
    sparse_rhs,
    unsymmetric_diag_dominant,
)
from repro.sparse.ordering import ordering_by_name

needs_cc = pytest.mark.skipif(
    not (c_compiler_available("cc") or c_compiler_available("gcc")),
    reason="no C compiler available",
)

#: (kernel, matrix builder) for every registered factorization family.  The
#: write-set property holds on any input; the bitwise tests additionally
#: need schedules *wide enough* to clear the deep-etree fallback, so ldlt
#: and lu run on the (symmetric-pattern, diagonally dominant) permuted grid
#: rather than the generators whose chain-like U patterns always fall back
#: (that path is covered by test_deep_etree_takes_serial_fallback).
FACTOR_CASES = {
    "cholesky": lambda: _permuted_laplacian(12),
    "ldlt": lambda: _permuted_laplacian(12),
    "lu": lambda: _permuted_laplacian(12),
    "ic0": lambda: _permuted_laplacian(12),
    "ilu0": lambda: unsymmetric_diag_dominant(48, seed=5),
}


def _permuted_laplacian(side):
    grid = laplacian_2d(side, shift=0.1)
    return ordering_by_name("mindeg")(grid).symmetric_permute(grid)


def _c_options(**overrides):
    compiler = "cc" if c_compiler_available("cc") else "gcc"
    return SympilerOptions(backend="c", c_compiler=compiler, **overrides)


def _as_tuple(raw):
    return raw if isinstance(raw, tuple) else (raw,)


def _assert_bitwise(serial_raw, wavefront_raw):
    serial, wavefront = _as_tuple(serial_raw), _as_tuple(wavefront_raw)
    assert len(serial) == len(wavefront)
    for s, w in zip(serial, wavefront):
        assert np.array_equal(np.asarray(s), np.asarray(w))


# --------------------------------------------------------------------------- #
# Schedule write-set properties (backend-independent: python backend)
# --------------------------------------------------------------------------- #
#: Extra write-set cases on the kernels' "native" generators (indefinite,
#: unsymmetric) — deep schedules are fine here, the property is structural.
WRITE_SET_CASES = {
    **FACTOR_CASES,
    "ldlt-indefinite": lambda: saddle_point_indefinite(24, 10, seed=5),
    "lu-unsymmetric": lambda: unsymmetric_diag_dominant(48, seed=5),
}


class TestScheduleWriteSets:
    @pytest.mark.parametrize("case", sorted(WRITE_SET_CASES))
    def test_levels_have_disjoint_write_sets(self, case):
        """Each column is written by exactly one level, once.

        The wavefront executor assigns level members to workers without any
        per-column locking, which is only safe because a column's write set
        (its own slice of the factor) belongs to exactly one level.
        """
        kernel = case.split("-")[0]
        A = WRITE_SET_CASES[case]()
        sym = Sympiler(SympilerOptions(backend="python"), cache=ArtifactCache())
        schedule = sym.compile(kernel, A).schedule
        assert schedule is not None
        seen = np.zeros(schedule.n, dtype=np.int64)
        for level in schedule.levels():
            assert level.size > 0  # empty levels are squeezed out
            assert np.unique(level).size == level.size
            seen[level] += 1
        assert (seen <= 1).all()  # no column written by two levels
        # Factorizations schedule every column of the factor.
        assert schedule.n_scheduled == A.n_cols
        assert int(seen.sum()) == A.n_cols

    def test_trisolve_schedule_writes_only_the_reach(self):
        A = _permuted_laplacian(10)
        sym = Sympiler(SympilerOptions(backend="python"), cache=ArtifactCache())
        L = sym.compile("cholesky", A).factorize(A)
        rhs = sparse_rhs(L.n, nnz=2, seed=7)
        tri = sym.compile(
            "triangular-solve", L, rhs_pattern=np.nonzero(rhs)[0]
        )
        schedule = tri.schedule
        assert schedule is not None
        order = schedule.as_order()
        assert np.unique(order).size == order.size
        # Pruned solves write strictly fewer entries than n.
        assert 0 < schedule.n_scheduled < L.n


# --------------------------------------------------------------------------- #
# Bitwise identity of the compiled parallel entries (C backend)
# --------------------------------------------------------------------------- #
@needs_cc
class TestBitwiseIdentity:
    @pytest.mark.parametrize("kernel", sorted(FACTOR_CASES))
    def test_factorization_matches_serial_bits(self, kernel, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SYMPILER_CACHE", str(tmp_path))
        A = FACTOR_CASES[kernel]()
        # Simplicial bodies so the factorizations actually take the
        # wavefront path (supernodal panels fall back; covered below).
        serial = _c_options(enable_vs_block=False)
        sym_s = Sympiler(serial, cache=ArtifactCache())
        sym_w = Sympiler(
            serial.with_updates(parallel="wavefront"), cache=ArtifactCache()
        )
        fac_s = sym_s.compile(kernel, A)
        fac_w = sym_w.compile(kernel, A)
        assert fac_w.parallel_mode == "wavefront"
        assert fac_w.accepts_num_threads
        for threads in (1, 4):
            _assert_bitwise(
                fac_s.factorize_arrays(A.indptr, A.indices, A.data),
                fac_w.factorize_arrays(
                    A.indptr, A.indices, A.data, num_threads=threads
                ),
            )

    def test_trisolve_matches_serial_bits(self, tmp_path, monkeypatch):
        """Dense and sparse right-hand sides, including supernodal bodies."""
        monkeypatch.setenv("REPRO_SYMPILER_CACHE", str(tmp_path))
        A = _permuted_laplacian(14)
        for vs_block in (False, True):  # simplicial and supernodal serial bodies
            serial = _c_options(enable_vs_block=vs_block)
            sym_s = Sympiler(serial, cache=ArtifactCache())
            sym_w = Sympiler(
                serial.with_updates(parallel="wavefront"), cache=ArtifactCache()
            )
            L = sym_s.compile("cholesky", A).factorize(A)
            tri_s = sym_s.compile("triangular-solve", L)
            tri_w = sym_w.compile("triangular-solve", L)
            assert tri_w.parallel_mode == "wavefront"
            b = np.cos(np.arange(L.n, dtype=np.float64))
            _assert_bitwise(
                tri_s.solve_arrays(L.indptr, L.indices, L.data, b),
                tri_w.solve_arrays(L.indptr, L.indices, L.data, b, num_threads=4),
            )
            rhs = sparse_rhs(L.n, nnz=3, seed=11)
            pat = np.nonzero(rhs)[0]
            ps = sym_s.compile("triangular-solve", L, rhs_pattern=pat)
            pw = sym_w.compile("triangular-solve", L, rhs_pattern=pat)
            _assert_bitwise(
                ps.solve_arrays(L.indptr, L.indices, L.data, rhs),
                pw.solve_arrays(L.indptr, L.indices, L.data, rhs, num_threads=4),
            )

    def test_full_solve_both_sweeps_match_serial_bits(self, tmp_path, monkeypatch):
        """Forward and backward substitution of one direct solve."""
        monkeypatch.setenv("REPRO_SYMPILER_CACHE", str(tmp_path))
        A = laplacian_2d(13, shift=0.1)
        b = np.sin(np.arange(A.n, dtype=np.float64))
        serial = SparseLinearSolver(
            A, ordering="mindeg", options=_c_options(enable_vs_block=False)
        )
        wavefront = SparseLinearSolver(
            A,
            ordering="mindeg",
            options=_c_options(enable_vs_block=False, parallel="wavefront"),
        )
        x_s = serial.solve(b)
        x_w = wavefront.solve(b, num_threads=4)
        assert np.array_equal(x_s, x_w)
        assert np.linalg.norm(A.matvec(x_w) - b) < 1e-8

    def test_deep_etree_takes_serial_fallback(self, tmp_path, monkeypatch):
        """A chain graph (one column per level) must decline to parallelize."""
        monkeypatch.setenv("REPRO_SYMPILER_CACHE", str(tmp_path))
        chain = laplacian_2d(120, 1, shift=0.1)
        serial = _c_options(enable_vs_block=False)
        sym_s = Sympiler(serial, cache=ArtifactCache())
        sym_w = Sympiler(
            serial.with_updates(parallel="wavefront"), cache=ArtifactCache()
        )
        fac_s = sym_s.compile("cholesky", chain)
        fac_w = sym_w.compile("cholesky", chain)
        assert fac_w.schedule.average_width < serial.wavefront_min_avg_width
        assert fac_w.parallel_mode == "serial-fallback"
        # The fallback keeps the wavefront ABI: a thread count is accepted
        # (and ignored), and the bits still match serial.
        _assert_bitwise(
            fac_s.factorize_arrays(chain.indptr, chain.indices, chain.data),
            fac_w.factorize_arrays(
                chain.indptr, chain.indices, chain.data, num_threads=4
            ),
        )


# --------------------------------------------------------------------------- #
# Cache keying
# --------------------------------------------------------------------------- #
class TestCacheKeying:
    def test_parallel_mode_is_fingerprinted(self):
        serial = SympilerOptions(backend="c")
        wavefront = serial.with_updates(parallel="wavefront")
        assert options_fingerprint(serial) != options_fingerprint(wavefront)

    def test_num_threads_is_not_fingerprinted(self):
        """Thread count is runtime-only: no recompile to change it."""
        base = SympilerOptions(backend="c", parallel="wavefront")
        assert options_fingerprint(base) == options_fingerprint(
            base.with_updates(num_threads=8)
        )

    @needs_cc
    def test_serial_and_wavefront_artifacts_coexist(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SYMPILER_CACHE", str(tmp_path))
        A = _permuted_laplacian(8)
        cache = ArtifactCache()
        serial = _c_options(enable_vs_block=False)
        sym_s = Sympiler(serial, cache=cache)
        sym_w = Sympiler(serial.with_updates(parallel="wavefront"), cache=cache)
        fac_s = sym_s.compile("cholesky", A)
        fac_w = sym_w.compile("cholesky", A)
        # Distinct artifacts under one shared cache: no cross-mode hit.
        assert fac_s is not fac_w
        assert fac_s.parallel_mode == "none"
        assert fac_w.parallel_mode == "wavefront"
        # Recompiling either mode hits its own entry.
        assert sym_s.compile("cholesky", A) is fac_s
        assert sym_w.compile("cholesky", A) is fac_w


# --------------------------------------------------------------------------- #
# Thread-count resolution and the items-vs-levels heuristic
# --------------------------------------------------------------------------- #
class TestThreadResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "7")
        assert resolve_num_threads(3) == 3

    def test_env_override_applies_when_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "7")
        assert resolve_num_threads(None) == 7

    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUM_THREADS", raising=False)
        assert resolve_num_threads(None) == 1

    def test_zero_means_one_per_cpu(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_NUM_THREADS", "0")
        assert resolve_num_threads(None) == (os.cpu_count() or 1)
        assert resolve_num_threads(0) == (os.cpu_count() or 1)

    def test_garbage_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "many")
        with pytest.raises(ValueError, match="REPRO_NUM_THREADS"):
            resolve_num_threads(None)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            resolve_num_threads(-2)

    def test_executor_env_beats_compile_options(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "5")
        A = _permuted_laplacian(8)
        sym = Sympiler(
            SympilerOptions(backend="python", num_threads=2), cache=ArtifactCache()
        )
        artifact = sym.compile("cholesky", A)
        assert BatchExecutor(artifact).num_threads == 5
        assert BatchExecutor(artifact, num_threads=3).num_threads == 3
        monkeypatch.delenv("REPRO_NUM_THREADS")
        assert BatchExecutor(artifact).num_threads == 2


@needs_cc
class TestPlanBatch:
    def _executor(self, parallel, tmp_path, monkeypatch, num_threads=4):
        monkeypatch.setenv("REPRO_SYMPILER_CACHE", str(tmp_path))
        A = _permuted_laplacian(8)
        opts = _c_options(enable_vs_block=False, parallel=parallel)
        artifact = Sympiler(opts, cache=ArtifactCache()).compile("cholesky", A)
        return BatchExecutor(artifact, num_threads=num_threads)

    def test_large_batch_threads_across_items(self, tmp_path, monkeypatch):
        ex = self._executor("wavefront", tmp_path, monkeypatch)
        assert ex.wavefront_capable
        assert ex.plan_batch(8) == ("threads", 1)
        assert ex.plan_batch(4) == ("threads", 1)

    def test_small_batch_threads_within_kernels(self, tmp_path, monkeypatch):
        ex = self._executor("wavefront", tmp_path, monkeypatch)
        assert ex.plan_batch(2) == ("wavefront", 4)
        assert ex.plan_batch(1) == ("wavefront", 4)

    def test_serial_artifact_never_plans_wavefront(self, tmp_path, monkeypatch):
        ex = self._executor("none", tmp_path, monkeypatch)
        assert not ex.wavefront_capable
        assert ex.plan_batch(2) == ("threads", 1)

    def test_single_worker_stays_serial(self, tmp_path, monkeypatch):
        ex = self._executor("wavefront", tmp_path, monkeypatch, num_threads=1)
        assert ex.plan_batch(2) == ("serial", 1)
