"""Fleet tests: consistent-hash routing, shard failover, warm re-registration."""

from __future__ import annotations

import collections

import numpy as np
import pytest

from repro.service.errors import PatternEvictedError, ShardUnavailableError
from repro.service.router import ConsistentHashRing
from repro.solvers.linear_solver import SparseLinearSolver
from repro.sparse.generators import fem_stencil_2d, laplacian_2d


class TestConsistentHashRing:
    def test_routes_are_deterministic(self):
        ring = ConsistentHashRing([0, 1, 2])
        again = ConsistentHashRing([0, 1, 2])
        keys = [f"pattern-{i}" for i in range(200)]
        assert [ring.route(k) for k in keys] == [again.route(k) for k in keys]

    def test_all_slots_get_load(self):
        ring = ConsistentHashRing([0, 1, 2, 3])
        counts = collections.Counter(ring.route(f"key-{i}") for i in range(2000))
        assert set(counts) == {0, 1, 2, 3}
        # Virtual nodes keep the spread sane: no shard more than ~3x another.
        assert max(counts.values()) < 3 * min(counts.values())

    def test_removal_moves_only_the_dead_shards_keys(self):
        ring = ConsistentHashRing([0, 1, 2, 3])
        keys = [f"key-{i}" for i in range(1000)]
        before = {k: ring.route(k) for k in keys}
        ring.remove(2)
        moved = sum(
            1 for k in keys if before[k] != ring.route(k) and before[k] != 2
        )
        # Consistent hashing: keys on surviving shards keep their placement.
        assert moved == 0
        assert all(ring.route(k) != 2 for k in keys)

    def test_add_and_remove_are_idempotent(self):
        ring = ConsistentHashRing([0, 1])
        ring.add(1)
        assert ring.slots() == [0, 1]
        ring.remove(1)
        ring.remove(1)
        assert ring.slots() == [0]

    def test_empty_ring_raises(self):
        ring = ConsistentHashRing()
        with pytest.raises(LookupError, match="empty"):
            ring.route("anything")

    def test_membership_protocol(self):
        ring = ConsistentHashRing([0, 2])
        assert len(ring) == 2
        assert 0 in ring and 2 in ring and 1 not in ring


@pytest.fixture(scope="module")
def fleet_cache(tmp_path_factory):
    """A module-shared compiled-kernel cache so spawns stay cheap."""
    return tmp_path_factory.mktemp("fleet-cache")


@pytest.fixture()
def fleet(fleet_cache):
    from repro.service.fleet import ShardFleet

    fleet = ShardFleet(2, cache_dir=fleet_cache, window_ms=2.0)
    yield fleet
    fleet.close()


class TestShardFleet:
    def _matrices(self):
        return {
            "lap_small": laplacian_2d(10, shift=0.1),
            "fem": fem_stencil_2d(8, shift=0.2),
            "lap_large": laplacian_2d(13, shift=0.3),
        }

    def test_register_solve_and_submit_roundtrip(self, fleet):
        mats = self._matrices()
        handles = {k: fleet.register_pattern(A) for k, A in mats.items()}
        refs = {k: SparseLinearSolver(A, ordering="natural") for k, A in mats.items()}
        # Sync solves match the local reference bitwise-comparable tolerance.
        for k, A in mats.items():
            rhs = np.linspace(0.5, 1.5, A.n)
            assert np.allclose(
                fleet.solve(handles[k], A.data, rhs), refs[k].solve(rhs), atol=1e-8
            )
        # Pipelined submits across all patterns complete and verify.
        futures = []
        for k, A in mats.items():
            for i in range(4):
                rhs = np.sin(np.arange(A.n, dtype=np.float64) + i)
                futures.append((k, rhs, fleet.submit(handles[k], A.data, rhs)))
        for k, rhs, future in futures:
            x = fleet.result(future, timeout=60)
            assert np.allclose(x, refs[k].solve(rhs), atol=1e-8)

    def test_same_pattern_routes_to_same_shard(self, fleet):
        A = laplacian_2d(10, shift=0.1)
        h1 = fleet.register_pattern(A)
        h2 = fleet.register_pattern(A)
        assert h1.handle_id == h2.handle_id
        stats = fleet.stats()
        # The pattern is registered on exactly one shard.
        owners = [
            slot
            for slot, s in stats["per_shard"].items()
            if h1.handle_id in s.get("patterns", {})
        ]
        assert len(owners) == 1

    def test_shard_death_recovers_warm_with_zero_recompiles(self, fleet):
        """The failover guarantee: kill a shard mid-service, all patterns
        keep solving, and the replacement re-registers WARM from the shared
        disk cache — zero recompiles, counter-asserted."""
        mats = self._matrices()
        handles = {k: fleet.register_pattern(A) for k, A in mats.items()}
        refs = {k: SparseLinearSolver(A, ordering="natural") for k, A in mats.items()}
        owned = {
            slot: s.get("registered_patterns", 0)
            for slot, s in fleet.stats()["per_shard"].items()
        }
        victim = int(next(slot for slot, n in owned.items() if n > 0))
        fleet.kill_shard(victim)
        for k, A in mats.items():
            rhs = np.cos(np.arange(A.n, dtype=np.float64))
            x = fleet.solve(handles[k], A.data, rhs)
            assert np.allclose(x, refs[k].solve(rhs), atol=1e-8)
        counters = fleet.counters
        assert counters["shard_deaths"] == 1
        assert counters["respawns"] == 1
        assert counters["reregisters"] == owned[str(victim)]
        assert counters["warm_reregisters"] == counters["reregisters"]
        assert counters["cold_reregisters"] == 0
        # The fleet is back to full strength.
        assert fleet.stats()["shards"] == 2

    def test_pipelined_submits_survive_shard_death(self, fleet):
        """Futures in flight on the dying shard resubmit after recovery."""
        mats = self._matrices()
        handles = {k: fleet.register_pattern(A) for k, A in mats.items()}
        refs = {k: SparseLinearSolver(A, ordering="natural") for k, A in mats.items()}
        owned = {
            slot: s.get("registered_patterns", 0)
            for slot, s in fleet.stats()["per_shard"].items()
        }
        victim = int(next(slot for slot, n in owned.items() if n > 0))
        fleet.kill_shard(victim)
        # Submit *after* the kill but before any recovery ran: the dead
        # connection surfaces ShardUnavailableError and the fleet retries.
        futures = []
        for k, A in mats.items():
            for i in range(3):
                rhs = np.sin(np.arange(A.n, dtype=np.float64) * (i + 1))
                futures.append((k, rhs, fleet.submit(handles[k], A.data, rhs)))
        for k, rhs, future in futures:
            x = fleet.result(future, timeout=120)
            assert np.allclose(x, refs[k].solve(rhs), atol=1e-8)
        assert fleet.counters["shard_deaths"] == 1
        assert fleet.counters["cold_reregisters"] == 0

    def test_no_respawn_rebalances_to_survivors(self, fleet_cache):
        from repro.service.fleet import ShardFleet

        mats = self._matrices()
        with ShardFleet(2, cache_dir=fleet_cache, respawn=False) as fleet:
            handles = {k: fleet.register_pattern(A) for k, A in mats.items()}
            owned = {
                slot: s.get("registered_patterns", 0)
                for slot, s in fleet.stats()["per_shard"].items()
            }
            victim = int(next(slot for slot, n in owned.items() if n > 0))
            fleet.kill_shard(victim)
            for k, A in mats.items():
                x = fleet.solve(handles[k], A.data, np.ones(A.n))
                assert np.isfinite(x).all()
            stats = fleet.stats()
            assert stats["shards"] == 1
            assert stats["counters"]["rebalances"] == 1
            assert stats["counters"]["cold_reregisters"] == 0
            # Kill the last survivor: the fleet is empty and says so.
            survivor = int(next(iter(stats["per_shard"])))
            fleet.kill_shard(survivor)
            some = next(iter(handles.values()))
            A = mats[next(iter(mats))]
            with pytest.raises(ShardUnavailableError):
                fleet.solve(some, A.data, np.ones(A.n))

    def test_unknown_handle_maps_to_evicted(self, fleet):
        with pytest.raises(PatternEvictedError):
            fleet.solve("deadbeefdeadbeef", np.ones(3), np.ones(3))

    def test_evict_removes_from_fleet_and_shard(self, fleet):
        A = laplacian_2d(9, shift=0.15)
        handle = fleet.register_pattern(A)
        assert fleet.evict(handle)
        assert not fleet.evict(handle)
        with pytest.raises(PatternEvictedError):
            fleet.solve(handle, A.data, np.ones(A.n))

    def test_merged_metrics_have_per_shard_labels(self, fleet):
        A = laplacian_2d(8, shift=0.1)
        handle = fleet.register_pattern(A)
        fleet.solve(handle, A.data, np.ones(A.n))
        text = fleet.metrics_text()
        assert 'shard="0"' in text and 'shard="1"' in text
        assert "repro_fleet_shards 2" in text
        assert "repro_fleet_shard_deaths 0" in text
        # Well-formed exposition: every sample line is `name{labels} value`.
        for line in text.splitlines():
            if line and not line.startswith("#"):
                key, value = line.rsplit(" ", 1)
                float(value)
                assert 'shard="' in key or key.startswith("repro_fleet_")

    def test_endpoint_protocol_conformance(self, fleet):
        from repro.service import ServiceClient, SolverEndpoint, SolverService

        assert isinstance(fleet, SolverEndpoint)
        service = SolverService()
        try:
            assert isinstance(service, SolverEndpoint)
        finally:
            service.close()
        assert issubclass(ServiceClient, SolverEndpoint) or all(
            hasattr(ServiceClient, m)
            for m in (
                "register_pattern",
                "submit",
                "solve",
                "evict",
                "stats",
                "metrics_text",
                "close",
            )
        )

    def test_close_is_idempotent_and_kills_workers(self, fleet_cache):
        from repro.service.fleet import ShardFleet

        fleet = ShardFleet(2, cache_dir=fleet_cache)
        procs = [s.process for s in fleet._shards.values()]
        fleet.close()
        fleet.close()
        assert all(p.poll() is not None for p in procs)
        with pytest.raises(RuntimeError, match="closed"):
            fleet.register_pattern(laplacian_2d(6, shift=0.1))
