"""Tests for the benchmark harness (suite, metrics, reporting, drivers)."""

import numpy as np
import pytest

from repro.bench.figures import (
    fig6_triangular_performance,
    fig7_cholesky_performance,
    fig8_triangular_accumulated,
    fig9_cholesky_accumulated,
    intro_triangular_speedups,
    overhead_report,
    prepare,
    table2_suite_listing,
)
from repro.bench.metrics import gflops_rate, time_callable
from repro.bench.reporting import geometric_mean, render_csv, render_table
from repro.bench.suite import build_suite, load_suite_matrix, small_suite
from repro.sparse.utils import is_symmetric_pattern


class TestSuite:
    def test_full_suite_has_eleven_entries_like_table2(self):
        suite = build_suite()
        assert len(suite) == 11
        assert [e.problem_id for e in suite] == list(range(1, 12))
        names = {e.stands_in_for for e in suite}
        assert {"cbuckle", "ecology2", "tmt_sym", "Dubcova2"} <= names

    def test_small_suite_entries_build_quickly(self):
        for entry in small_suite():
            A = load_suite_matrix(entry, cache=False)
            assert A.is_square()
            assert is_symmetric_pattern(A)

    def test_load_suite_matrix_applies_ordering_and_caches(self):
        entry = small_suite()[1]  # mindeg-ordered entry
        unpermuted = load_suite_matrix(entry, permute=False, cache=False)
        permuted = load_suite_matrix(entry, permute=True)
        assert permuted.nnz == unpermuted.nnz
        again = load_suite_matrix(entry, permute=True)
        assert again is permuted  # cached object


class TestMetricsAndReporting:
    def test_time_callable_returns_median_and_result(self):
        calls = []

        def fn():
            calls.append(1)
            return "value"

        seconds, result = time_callable(fn, repeats=3, warmup=1)
        assert result == "value"
        assert seconds >= 0.0
        assert len(calls) == 4

    def test_time_callable_validation(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)

    def test_gflops_rate(self):
        assert gflops_rate(3_000_000_000, 1.5) == pytest.approx(2.0)
        assert gflops_rate(1, 0.0) == float("inf")

    def test_render_table_and_csv(self):
        rows = [{"name": "a", "value": 1.5}, {"name": "b", "value": 2.0}]
        table = render_table(rows, title="demo")
        assert "demo" in table and "name" in table and "1.500" in table
        csv = render_csv(rows)
        assert csv.splitlines()[0] == "name,value"
        assert render_table([]) == "(no rows)\n"
        assert render_csv([]) == ""

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert np.isnan(geometric_mean([]))


@pytest.fixture(scope="module")
def tiny_suite():
    return small_suite()[:2]


class TestExperimentDrivers:
    def test_table2_rows(self, tiny_suite):
        rows = table2_suite_listing(tiny_suite)
        assert len(rows) == 2
        assert set(rows[0]) >= {"problem_id", "name", "n", "nnz_A", "ordering"}

    def test_prepare_caches_artifacts(self, tiny_suite):
        first = prepare(tiny_suite[0])
        second = prepare(tiny_suite[0])
        assert first is second
        assert first.L.is_lower_triangular()
        assert np.count_nonzero(first.b) >= 1

    def test_fig6_rows_have_all_variants(self, tiny_suite):
        rows = fig6_triangular_performance(tiny_suite, repeats=1)
        matrix_rows = [r for r in rows if r["name"] != "geomean"]
        assert len(matrix_rows) == len(tiny_suite)
        for row in matrix_rows:
            for key in (
                "eigen_gflops",
                "sympiler_vs_block_gflops",
                "sympiler_vs_vi_gflops",
                "sympiler_full_gflops",
                "sympiler_full_speedup_vs_eigen",
            ):
                assert key in row and row[key] > 0

    def test_fig7_rows_have_all_variants(self, tiny_suite):
        rows = fig7_cholesky_performance(tiny_suite, repeats=1)
        matrix_rows = [r for r in rows if r["name"] != "geomean"]
        for row in matrix_rows:
            for key in (
                "eigen_gflops",
                "cholmod_gflops",
                "sympiler_vs_block_gflops",
                "sympiler_full_gflops",
            ):
                assert key in row and row[key] > 0

    def test_fig8_normalization(self, tiny_suite):
        rows = fig8_triangular_accumulated(tiny_suite, repeats=1)
        for row in rows:
            assert row["sympiler_numeric_normalized"] > 0
            assert row["sympiler_accumulated_normalized"] >= row["sympiler_numeric_normalized"]

    def test_fig9_normalization(self, tiny_suite):
        rows = fig9_cholesky_accumulated(tiny_suite, repeats=1)
        for row in rows:
            assert row["eigen_total_normalized"] == pytest.approx(1.0)
            assert row["sympiler_total_normalized"] > 0
            assert row["cholmod_total_normalized"] > 0

    def test_intro_speedups(self, tiny_suite):
        rows = intro_triangular_speedups(tiny_suite, repeats=1)
        matrix_rows = [r for r in rows if r["name"] != "geomean"]
        for row in matrix_rows:
            # The specialized solve must beat the naive full-column solve.
            assert row["speedup_vs_naive"] > 1.0

    def test_overhead_report(self, tiny_suite):
        rows = overhead_report(tiny_suite)
        for row in rows:
            assert row["tri_codegen_over_numeric"] > 0
            assert row["chol_symbolic_over_numeric"] > 0


def test_cli_table2_small(capsys):
    from repro.bench.__main__ import main

    assert main(["table2", "--small"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert main(["table2", "--small", "--csv"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("problem_id,")


def test_lu_experiment_rows(tmp_path):
    from repro.bench.figures import lu_performance
    from repro.bench.suite import small_suite

    rows = lu_performance(small_suite()[:2], repeats=1)
    assert len(rows) == 2
    for row in rows:
        assert row["residual"] <= 1e-8
        assert row["recompile_cache_hit"] is True
        assert row["nnz_LU"] > row["nnz_A"] // 2


def test_batched_experiment_rows():
    from repro.bench.figures import batched_throughput
    from repro.bench.suite import small_suite

    rows = batched_throughput(small_suite()[:1], repeats=1, batch=4)
    assert len(rows) == 1
    row = rows[0]
    assert row["bitwise_identical"] is True
    assert row["batch_recompiles"] == 0
    assert row["mode"] in ("serial", "stacked", "threads")
    assert row["batched_items_per_second"] > 0
    assert row["schedule_levels"] >= 1
    assert row["schedule_avg_width"] >= 1.0


def test_cli_batched_accepts_threads(tmp_path, capsys):
    import json

    from repro.bench.__main__ import main

    assert (
        main(["batched", "--small", "--threads", "1", "--json", str(tmp_path)]) == 0
    )
    capsys.readouterr()
    payload = json.loads((tmp_path / "BENCH_batched.json").read_text())
    assert payload["args"]["threads"] == 1
    assert all(r["batch_recompiles"] == 0 for r in payload["rows"])
    assert all(r["bitwise_identical"] for r in payload["rows"])


def test_cli_json_report(tmp_path, capsys):
    import json

    from repro.bench.__main__ import main

    assert main(["table2", "--small", "--json", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    path = tmp_path / "BENCH_table2.json"
    assert path.exists() and str(path) in out
    payload = json.loads(path.read_text())
    assert payload["experiment"] == "table2"
    assert payload["args"]["small"] is True
    assert len(payload["rows"]) == 4


def test_serving_experiment_rows():
    from repro.bench.figures import serving_throughput
    from repro.bench.suite import small_suite

    rows = serving_throughput(small_suite()[:1], requests=8, max_batch=4)
    assert len(rows) == 1
    row = rows[0]
    assert row["bitwise_identical"] is True
    assert row["serving_recompiles"] == 0
    assert row["reregister_warm"] is True
    assert row["mode"] in ("serial", "stacked", "threads")
    assert row["requests"] == 8
    # Submit-all-then-wait traffic must actually coalesce.
    assert row["coalescing_ratio"] > 1.0
    assert row["max_batch_observed"] <= 4
    assert row["requests_per_second"] > 0


def test_serving_gated_metrics_catch_regressions():
    from repro.bench.compare import compare_rows

    baseline = [
        {
            "name": "m",
            "bitwise_identical": True,
            "reregister_warm": True,
            "serving_recompiles": 0,
            "coalesced_over_uncoalesced": 4.0,
            "coalescing_ratio": 16.0,
        }
    ]
    ok = [dict(baseline[0])]
    assert compare_rows("serving", baseline, ok) == []
    broken = dict(
        baseline[0],
        bitwise_identical=False,
        serving_recompiles=3,
        coalesced_over_uncoalesced=0.9,
        coalescing_ratio=1.0,
    )
    found = compare_rows("serving", baseline, [broken])
    metrics = {r.metric for r in found}
    assert metrics == {
        "bitwise_identical",
        "serving_recompiles",
        "coalesced_over_uncoalesced",
        "coalescing_ratio",
    }


def test_pcg_experiment_rows():
    from repro.bench.figures import pcg_performance
    from repro.bench.suite import small_suite

    rows = pcg_performance(small_suite()[:2], repeats=1)
    assert len(rows) == 2
    for row in rows:
        assert row["converged"] is True
        assert row["bitwise_identical"] is True
        assert row["final_residual"] <= 1e-8
        # The preconditioner must actually help.
        assert row["iterations"] < row["plain_cg_iterations"]
        assert row["compiled_seconds"] > 0


class TestPerfGateComparator:
    """The bench-compare step must fail on an injected synthetic regression."""

    @staticmethod
    def _rows(**overrides):
        row = {
            "name": "t_fem",
            "converged": True,
            "bitwise_identical": True,
            "iterations": 10,
            "final_residual": 1e-9,
        }
        row.update(overrides)
        return [row]

    def test_identical_rows_pass(self):
        from repro.bench.compare import compare_rows

        base = self._rows()
        assert compare_rows("pcg", base, self._rows()) == []

    def test_injected_iteration_regression_fails(self):
        from repro.bench.compare import compare_rows, format_regressions

        base = self._rows()
        worse = self._rows(iterations=14)  # > 25 % more iterations
        found = compare_rows("pcg", base, worse, max_regression=0.25)
        assert len(found) == 1
        assert found[0].metric == "iterations" and found[0].current == 14
        report = format_regressions(found)
        assert "iterations" in report and "benchmarks/baselines" in report

    def test_regression_within_allowance_passes(self):
        from repro.bench.compare import compare_rows

        base = self._rows()
        slightly_worse = self._rows(iterations=12)  # 20 % < 25 %
        assert compare_rows("pcg", base, slightly_worse, max_regression=0.25) == []

    def test_boolean_flip_fails_regardless_of_allowance(self):
        from repro.bench.compare import compare_rows

        base = self._rows()
        flipped = self._rows(bitwise_identical=False)
        found = compare_rows("pcg", base, flipped, max_regression=10.0)
        assert [r.metric for r in found] == ["bitwise_identical"]

    def test_zero_baseline_counter_tolerates_no_increase(self):
        from repro.bench.compare import compare_rows

        base = [{"name": "t_grid", "batch_recompiles": 0, "bitwise_identical": True, "schedule_levels": 5}]
        current = [{"name": "t_grid", "batch_recompiles": 1, "bitwise_identical": True, "schedule_levels": 5}]
        found = compare_rows("batched", base, current)
        assert [r.metric for r in found] == ["batch_recompiles"]

    def test_higher_direction_metric(self):
        from repro.bench.compare import GatedMetric, _metric_regressed

        metric = GatedMetric("speedup", "higher")
        assert _metric_regressed(metric, 2.0, 1.0, 0.25) is True
        assert _metric_regressed(metric, 2.0, 1.9, 0.25) is False

    def test_noise_allowance_absorbs_jitter_but_not_real_regressions(self):
        from repro.bench.compare import GatedMetric, _metric_regressed

        ratio = GatedMetric("ldlt_over_cholesky", "lower", noise=0.5)
        # Timing jitter around a ~1.1 baseline stays under the gate ...
        assert _metric_regressed(ratio, 1.0, 1.3, 0.25) is False
        assert _metric_regressed(ratio, 1.0, 1.74, 0.25) is False
        # ... a genuine 2x slowdown of the gated kernel does not.
        assert _metric_regressed(ratio, 1.0, 2.2, 0.25) is True

    def test_unmatched_rows_and_metrics_are_skipped(self):
        from repro.bench.compare import compare_rows

        base = self._rows()
        new_matrix = [dict(self._rows()[0], name="brand_new")]
        assert compare_rows("pcg", base, new_matrix) == []
        missing_metric = [{"name": "t_fem", "converged": True}]
        assert compare_rows("pcg", base, missing_metric) == []

    def test_non_numeric_values_never_gate(self):
        from repro.bench.compare import compare_rows

        base = self._rows(iterations="-")  # geomean-style placeholder
        current = self._rows(iterations=1000)
        assert compare_rows("pcg", base, current) == []

    def test_experiment_without_gate_passes(self):
        from repro.bench.compare import compare_rows

        assert compare_rows("table2", [{"name": "a", "n": 4}], [{"name": "a", "n": 9}]) == []

    def test_missing_baseline_file_skips_gate(self, tmp_path):
        from repro.bench.compare import load_baseline

        assert load_baseline(str(tmp_path), "pcg") is None


def test_cli_compare_gate(tmp_path, capsys):
    import json

    from repro.bench.__main__ import main

    baseline_dir = tmp_path / "baselines"
    # First run writes the baseline; a second identical run passes the gate.
    assert main(["pcg", "--small", "--json", str(baseline_dir)]) == 0
    capsys.readouterr()
    assert main(["pcg", "--small", "--compare", str(baseline_dir)]) == 0
    out = capsys.readouterr().out
    assert "perf gate" in out and "ok" in out
    # Injected synthetic regression: corrupt the baseline so the current run
    # looks 10x worse on a gated counter -> the CLI must exit nonzero.
    path = baseline_dir / "BENCH_pcg.json"
    payload = json.loads(path.read_text())
    for row in payload["rows"]:
        row["iterations"] = max(1, row["iterations"] // 10)
    path.write_text(json.dumps(payload))
    assert main(["pcg", "--small", "--compare", str(baseline_dir)]) == 3
    captured = capsys.readouterr()
    assert "regression" in captured.err
    # A directory without a snapshot skips the gate instead of failing.
    assert main(["table2", "--small", "--compare", str(baseline_dir)]) == 0
