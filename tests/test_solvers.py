"""Tests for the application-level solvers."""

import numpy as np
import pytest

from repro.solvers.cg import incomplete_cholesky_ic0, preconditioned_conjugate_gradient
from repro.solvers.linear_solver import SparseLinearSolver
from repro.solvers.newton import newton_raphson_fixed_pattern
from repro.baselines.scipy_reference import reference_cholesky, reference_solve
from repro.sparse.coo import TripletBuilder
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import banded_spd, laplacian_2d, power_grid_spd


class TestSparseLinearSolver:
    def test_solve_matches_reference(self, spd_matrix, rng):
        solver = SparseLinearSolver(spd_matrix, ordering="mindeg")
        x_true = rng.normal(size=spd_matrix.n)
        b = spd_matrix.matvec(x_true)
        x = solver.solve(b)
        np.testing.assert_allclose(x, x_true, atol=1e-7)
        assert solver.residual(x, b) < 1e-9

    @pytest.mark.parametrize("ordering", ["natural", "mindeg", "rcm"])
    def test_orderings(self, spd_matrices, ordering, rng):
        A = spd_matrices["laplacian_2d"]
        solver = SparseLinearSolver(A, ordering=ordering)
        b = rng.normal(size=A.n)
        np.testing.assert_allclose(solver.solve(b), reference_solve(A, b), atol=1e-7)

    def test_refactorize_with_new_values(self, spd_matrices, rng):
        A = spd_matrices["banded"]
        solver = SparseLinearSolver(A)
        b = rng.normal(size=A.n)
        x1 = solver.solve(b)
        A2 = A.scale(2.0)
        solver.factorize(A2)
        x2 = solver.solve(b)
        np.testing.assert_allclose(x2, x1 / 2.0, atol=1e-8)

    def test_refactorize_rejects_different_pattern(self, spd_matrices):
        solver = SparseLinearSolver(spd_matrices["fem"])
        with pytest.raises(ValueError):
            solver.factorize(spd_matrices["banded"])

    def test_solve_many(self, spd_matrices, rng):
        A = spd_matrices["circuit"]
        solver = SparseLinearSolver(A)
        B = rng.normal(size=(A.n, 3))
        X = solver.solve_many(B)
        for k in range(3):
            np.testing.assert_allclose(A.matvec(X[:, k]), B[:, k], atol=1e-7)

    def test_shape_validation(self, spd_matrices):
        solver = SparseLinearSolver(spd_matrices["fem"])
        with pytest.raises(ValueError):
            solver.solve(np.ones(3))
        with pytest.raises(ValueError):
            solver.solve_many(np.ones((3, 2)))
        with pytest.raises(ValueError):
            SparseLinearSolver(CSCMatrix.from_dense(np.ones((2, 3))))

    def test_factor_properties(self, spd_matrices):
        A = spd_matrices["laplacian_2d"]
        solver = SparseLinearSolver(A, ordering="natural")
        np.testing.assert_allclose(
            solver.L.to_dense(), reference_cholesky(A), atol=1e-8
        )
        assert solver.factor_nnz == solver.L.nnz
        assert solver.setup_seconds >= 0.0


class TestIncompleteCholesky:
    def test_ic0_equals_exact_factor_when_no_fill(self):
        # A tridiagonal SPD matrix factors without fill, so IC(0) is exact.
        A = banded_spd(25, 1, seed=3)
        L = incomplete_cholesky_ic0(A)
        np.testing.assert_allclose(L.to_dense(), reference_cholesky(A), atol=1e-9)

    def test_ic0_pattern_is_tril_of_a(self, spd_matrices):
        A = spd_matrices["fem"]
        L = incomplete_cholesky_ic0(A)
        from repro.sparse.utils import lower_triangle

        assert L.pattern_equal(lower_triangle(A))
        assert L.is_lower_triangular()

    def test_ic0_requires_square(self):
        with pytest.raises(ValueError):
            incomplete_cholesky_ic0(CSCMatrix.from_dense(np.ones((2, 3))))


class TestConjugateGradient:
    def test_cg_converges_with_preconditioner(self, rng):
        A = laplacian_2d(12)
        x_true = rng.normal(size=A.n)
        b = A.matvec(x_true)
        result = preconditioned_conjugate_gradient(A, b, tol=1e-10)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, atol=1e-6)

    def test_preconditioner_reduces_iterations(self, rng):
        A = laplacian_2d(14)
        b = rng.normal(size=A.n)
        plain = preconditioned_conjugate_gradient(A, b, use_preconditioner=False, tol=1e-8)
        precond = preconditioned_conjugate_gradient(A, b, use_preconditioner=True, tol=1e-8)
        assert precond.converged
        assert precond.iterations <= plain.iterations

    def test_cg_residual_history_is_recorded(self, rng):
        A = power_grid_spd(60, seed=2)
        b = rng.normal(size=A.n)
        result = preconditioned_conjugate_gradient(A, b, tol=1e-9)
        assert len(result.residual_norms) >= result.iterations
        assert result.final_residual <= 1e-9

    def test_cg_max_iterations_cap(self, rng):
        A = laplacian_2d(10)
        b = rng.normal(size=A.n)
        result = preconditioned_conjugate_gradient(
            A, b, use_preconditioner=False, tol=1e-16, max_iterations=3
        )
        assert not result.converged
        assert result.iterations == 3

    def test_cg_input_validation(self):
        A = laplacian_2d(4)
        with pytest.raises(ValueError):
            preconditioned_conjugate_gradient(A, np.ones(3))
        with pytest.raises(ValueError):
            preconditioned_conjugate_gradient(CSCMatrix.from_dense(np.ones((2, 3))), np.ones(3))


class TestConjugateGradientEdgeCases:
    """Breakdown, bad diagonals, history reporting and compiled-vs-interpreted."""

    def test_ic0_breakdown_on_non_spd_input(self):
        # Indefinite: the second pivot of the (complete = incomplete here)
        # factorization is negative, so IC(0) must refuse, on both paths.
        A = CSCMatrix.from_dense(np.array([[1.0, 2.0], [2.0, 1.0]]))
        with pytest.raises(ValueError, match="non-positive pivot"):
            incomplete_cholesky_ic0(A)
        b = np.ones(2)
        for preconditioner in ("interpreted", "compiled"):
            with pytest.raises(ValueError, match="non-positive pivot"):
                preconditioned_conjugate_gradient(A, b, preconditioner=preconditioner)

    def test_ic0_zero_diagonal_breaks_down(self):
        # A stored-but-zero diagonal entry is a non-positive pivot (distinct
        # from the structurally-missing-diagonal error).
        A = CSCMatrix.from_dense(np.array([[1e-300, 1.0], [1.0, 2.0]]))
        A0 = A.with_values(np.array([0.0, 1.0, 1.0, 2.0]))
        with pytest.raises(ValueError, match="non-positive pivot at column 0"):
            incomplete_cholesky_ic0(A0)

    def test_ic0_near_zero_diagonal_survives_but_amplifies(self):
        # A tiny positive pivot is numerically legal for IC(0); the factor
        # simply carries a huge scaled column instead of erroring.
        A = CSCMatrix.from_dense(np.array([[1e-12, 1e-6], [1e-6, 2.0]]))
        L = incomplete_cholesky_ic0(A)
        assert np.isfinite(L.data).all()
        assert L.data[L.indptr[0]] == pytest.approx(1e-6)

    def test_ic0_missing_diagonal_raises_on_both_paths(self):
        from repro.compiler.sympiler import Sympiler

        # Column 1 stores an off-diagonal entry but no diagonal.
        A = CSCMatrix.from_dense(
            np.array([[2.0, 1.0, 0.0], [1.0, 0.0, 1.0], [0.0, 1.0, 3.0]])
        )
        with pytest.raises(ValueError, match="missing diagonal entry"):
            incomplete_cholesky_ic0(A)
        with pytest.raises(ValueError, match="missing diagonal entry"):
            Sympiler().compile("ic0", A)

    def test_unknown_preconditioner_rejected(self):
        A = laplacian_2d(4)
        with pytest.raises(ValueError, match="unknown preconditioner"):
            preconditioned_conjugate_gradient(A, np.ones(A.n), preconditioner="ilu9")

    def test_convergence_history_reporting(self, rng):
        A = laplacian_2d(10)
        b = rng.normal(size=A.n)
        result = preconditioned_conjugate_gradient(A, b, tol=1e-9)
        # One entry per evaluated residual: the initial one plus one per
        # iteration actually run.
        assert len(result.residual_norms) == result.iterations + 1
        assert result.residual_norms[0] == pytest.approx(
            np.linalg.norm(b) / max(np.linalg.norm(b), 1e-300)
        )
        assert result.final_residual == result.residual_norms[-1]
        assert result.final_residual <= 1e-9
        assert result.preconditioner == "compiled"
        plain = preconditioned_conjugate_gradient(A, b, use_preconditioner=False)
        assert plain.preconditioner is None

    def test_interpreted_and_compiled_preconditioners_match_bitwise(self, rng):
        # Acceptance criterion: on the python backend the compiled IC(0)
        # factor is bitwise identical to the interpreted one, so the whole
        # CG trajectory — iterates and residual history — coincides exactly.
        for A in (laplacian_2d(12), power_grid_spd(80, seed=5)):
            b = rng.normal(size=A.n)
            compiled = preconditioned_conjugate_gradient(
                A, b, tol=1e-10, preconditioner="compiled"
            )
            interpreted = preconditioned_conjugate_gradient(
                A, b, tol=1e-10, preconditioner="interpreted"
            )
            assert compiled.iterations == interpreted.iterations
            assert np.array_equal(compiled.x, interpreted.x)
            assert compiled.residual_norms == interpreted.residual_norms

    def test_compiled_ic0_factor_matches_interpreted_bitwise(self, spd_matrices):
        from repro.compiler.sympiler import Sympiler

        for A in spd_matrices.values():
            L_compiled = Sympiler().compile("ic0", A).factorize(A)
            L_interpreted = incomplete_cholesky_ic0(A)
            assert np.array_equal(L_compiled.data, L_interpreted.data)

    def test_solver_pcg_method(self, rng):
        A = laplacian_2d(12)
        solver = SparseLinearSolver(A, ordering="mindeg")
        b = rng.normal(size=A.n)
        result = solver.pcg(b, tol=1e-10)
        assert result.converged and result.preconditioner == "compiled"
        np.testing.assert_allclose(A.matvec(result.x), b, atol=1e-6)
        # The direct and iterative answers agree.
        np.testing.assert_allclose(result.x, solver.solve(b), atol=1e-6)

    def test_solver_rejects_incomplete_method(self):
        A = laplacian_2d(6)
        with pytest.raises(ValueError, match="incomplete factorization"):
            SparseLinearSolver(A, method="ic0")
        with pytest.raises(ValueError, match="incomplete factorization"):
            SparseLinearSolver(A, method="ilu0")


class TestNewtonRaphson:
    def test_solves_small_nonlinear_system(self):
        # F(x) = A x + 0.1 * x^3 - b, with the SPD Jacobian A + 0.3 diag(x^2).
        A = laplacian_2d(5)
        n = A.n
        rng = np.random.default_rng(3)
        x_target = rng.uniform(0.2, 1.0, size=n)
        b = A.matvec(x_target) + 0.1 * x_target**3

        def residual(x):
            return A.matvec(x) + 0.1 * x**3 - b

        def jacobian(x):
            builder = TripletBuilder(n, n)
            coo = A.to_coo()
            builder.add_many(coo.rows, coo.cols, coo.data)
            for i in range(n):
                builder.add(i, i, 0.3 * x[i] ** 2)
            return builder.to_csc()

        result = newton_raphson_fixed_pattern(residual, jacobian, np.zeros(n), tol=1e-10)
        assert result.converged
        np.testing.assert_allclose(result.x, x_target, atol=1e-7)
        assert result.factorizations >= 1
        assert result.residual_norms[-1] < result.residual_norms[0]

    def test_iteration_cap(self):
        A = laplacian_2d(4)
        n = A.n

        def residual(x):
            return A.matvec(x) - np.ones(n)

        def jacobian(x):
            return A

        result = newton_raphson_fixed_pattern(
            residual, jacobian, np.zeros(n), tol=1e-30, max_iterations=2
        )
        assert result.iterations == 2
