"""Cross-process single-flight compile tests for the shared disk cache.

The fleet's warm-failover guarantee rests on ``build_file_once``: when
several *processes* (shard workers, parallel CI jobs) cold-miss on the same
compiled artifact concurrently, exactly one runs the compiler and every
process ends up with a working artifact.  These tests drive the primitive
directly (threads standing in for processes exercise the same lockfile) and
then the real thing: two subprocesses cold-compiling the same pattern with
the C backend behind a ``cc`` shim that logs every compiler invocation.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import textwrap
import threading
import time

import pytest

from repro.compiler.cache import build_file_once

SRC_ROOT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _publish(path: str, payload: str = "artifact") -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(payload)
    os.replace(tmp, path)


class TestBuildFileOnce:
    def test_existing_target_is_a_hit(self, tmp_path):
        target = str(tmp_path / "artifact.so")
        _publish(target)
        calls = []
        assert build_file_once(target, lambda: calls.append(1)) == "hit"
        assert not calls

    def test_winner_builds_and_releases_the_lock(self, tmp_path):
        target = str(tmp_path / "artifact.so")
        outcome = build_file_once(target, lambda: _publish(target))
        assert outcome == "built"
        assert os.path.exists(target)
        assert not os.path.exists(target + ".lock")

    def test_concurrent_callers_run_exactly_one_builder(self, tmp_path):
        target = str(tmp_path / "artifact.so")
        builds = []
        build_lock = threading.Lock()
        start = threading.Barrier(8)
        outcomes = []

        def builder():
            with build_lock:
                builds.append(threading.get_ident())
            time.sleep(0.05)  # widen the race window
            _publish(target)

        def contend():
            start.wait()
            outcomes.append(build_file_once(target, builder))

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(builds) == 1
        assert outcomes.count("built") == 1
        assert sorted(set(outcomes)) in (["built", "waited"], ["built"])
        with open(target, encoding="utf-8") as fh:
            assert fh.read() == "artifact"

    def test_winner_failure_lets_a_waiter_rebuild(self, tmp_path):
        target = str(tmp_path / "artifact.so")

        def failing():
            raise RuntimeError("compiler exploded")

        with pytest.raises(RuntimeError, match="exploded"):
            build_file_once(target, failing)
        # The lock was released with nothing published: the next caller
        # becomes the winner and surfaces a working artifact.
        assert not os.path.exists(target + ".lock")
        assert build_file_once(target, lambda: _publish(target)) == "built"
        assert os.path.exists(target)

    def test_stale_lock_from_a_dead_process_is_broken(self, tmp_path):
        target = str(tmp_path / "artifact.so")
        lock = target + ".lock"
        with open(lock, "w", encoding="utf-8") as fh:
            fh.write("999999\n")  # a pid that died without cleanup
        ancient = time.time() - 3600
        os.utime(lock, (ancient, ancient))
        outcome = build_file_once(
            target, lambda: _publish(target), stale_lock_seconds=1.0
        )
        assert outcome == "built"
        assert os.path.exists(target)
        assert not os.path.exists(lock)

    def test_timeout_builds_redundantly_instead_of_failing(self, tmp_path):
        target = str(tmp_path / "artifact.so")
        lock = target + ".lock"
        with open(lock, "w", encoding="utf-8") as fh:
            fh.write(f"{os.getpid()}\n")  # a live-looking (fresh) lock
        outcome = build_file_once(
            target,
            lambda: _publish(target),
            timeout_seconds=0.2,
            stale_lock_seconds=3600.0,
        )
        assert outcome == "built"
        assert os.path.exists(target)
        os.unlink(lock)


_WORKER = textwrap.dedent(
    """
    import os, sys, time
    import numpy as np

    # Hold every worker at the same start line so the cold compiles overlap.
    go = sys.argv[1]
    deadline = time.time() + 60
    while not os.path.exists(go):
        if time.time() > deadline:
            sys.exit(3)
        time.sleep(0.005)

    from repro.compiler.codegen.c_backend import disk_cache_stats
    from repro.compiler.options import SympilerOptions
    from repro.solvers.linear_solver import SparseLinearSolver
    from repro.sparse.generators import laplacian_2d

    A = laplacian_2d(12, shift=0.1)
    options = SympilerOptions(backend="c", enable_vs_block=False)
    solver = SparseLinearSolver(A, ordering="natural", options=options)
    x = solver.solve(np.ones(A.n))
    if not np.isfinite(x).all():
        sys.exit(4)
    stats = disk_cache_stats().as_dict()
    print("RESULT", repr(float(x.sum())), stats["compiles"], stats["lock_waits"])
    """
)


@pytest.mark.skipif(shutil.which("cc") is None, reason="no C compiler on PATH")
def test_two_processes_cold_compile_with_exactly_one_cc_per_artifact(tmp_path):
    """Satellite guarantee, end to end: two fresh processes race to cold-
    compile the same pattern over one shared disk cache; every distinct
    artifact is compiled by exactly one ``cc`` invocation between them, and
    both processes end up with working kernels (identical solutions)."""
    real_cc = shutil.which("cc")
    shim_dir = tmp_path / "shim"
    shim_dir.mkdir()
    cc_log = tmp_path / "cc.log"
    shim = shim_dir / "cc"
    shim.write_text(
        f'#!/bin/sh\necho "$@" >> "{cc_log}"\nexec "{real_cc}" "$@"\n',
        encoding="utf-8",
    )
    shim.chmod(0o755)

    worker_script = tmp_path / "worker.py"
    worker_script.write_text(_WORKER, encoding="utf-8")
    go_file = tmp_path / "go"

    env = dict(os.environ)
    env["PATH"] = f"{shim_dir}{os.pathsep}{env.get('PATH', '')}"
    env["REPRO_SYMPILER_CACHE"] = str(tmp_path / "cache")
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")

    procs = [
        subprocess.Popen(
            [sys.executable, str(worker_script), str(go_file)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        for _ in range(2)
    ]
    go_file.write_text("go", encoding="utf-8")  # drop the start barrier
    outputs = []
    for proc in procs:
        out, err = proc.communicate(timeout=300)
        assert proc.returncode == 0, f"worker failed (rc={proc.returncode}): {err}"
        outputs.append(out)

    # Both processes produced the same solution from working artifacts.
    checksums = [
        line.split()[1]
        for out in outputs
        for line in out.splitlines()
        if line.startswith("RESULT")
    ]
    assert len(checksums) == 2
    assert checksums[0] == checksums[1]

    # Exactly one cc invocation per distinct generated source file: the
    # second process either waited on the lock or reused the published .so —
    # never compiled the same artifact again.
    invocations = [
        line for line in cc_log.read_text(encoding="utf-8").splitlines() if line
    ]
    compiled_sources = [
        arg for line in invocations for arg in line.split() if arg.endswith(".c")
    ]
    assert invocations, "the shim saw no cc invocations (compile never happened?)"
    assert len(compiled_sources) == len(set(compiled_sources)), (
        f"duplicate cc invocation for the same source: {compiled_sources}"
    )
