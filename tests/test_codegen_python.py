"""Tests for the specialized-Python code-generation backend."""

import numpy as np
import pytest

from repro.baselines.scipy_reference import reference_cholesky, reference_trisolve
from repro.compiler.codegen.python_backend import CodegenError, GeneratedModule, PythonBackend
from repro.compiler.codegen.runtime import pattern_fingerprint, runtime_namespace
from repro.compiler.lowering import lower_triangular_solve
from repro.compiler.options import SympilerOptions
from repro.compiler.sympiler import Sympiler
from repro.compiler.transforms.base import CompilationContext
from repro.compiler.transforms.pipeline import build_pipeline
from repro.sparse.generators import block_tridiagonal_spd, sparse_rhs
from repro.symbolic.inspector import TriangularSolveInspector


def _generate_trisolve(L, b, options):
    inspection = TriangularSolveInspector().inspect(L, rhs_pattern=np.nonzero(b)[0])
    context = CompilationContext(
        method="triangular-solve",
        matrix=L,
        inspection=inspection,
        options=options,
        rhs_pattern=inspection.rhs_pattern,
    )
    kernel = build_pipeline(options).run(lower_triangular_solve(), context)
    module = PythonBackend().generate(kernel, context)
    return module, kernel


class TestGeneratedTriangularSolve:
    @pytest.mark.parametrize(
        "options",
        [
            SympilerOptions.baseline(),
            SympilerOptions.vi_prune_only(),
            SympilerOptions.vs_block_only(),
            SympilerOptions(enable_low_level=False),
            SympilerOptions(),
        ],
        ids=["baseline", "vi-prune", "vs-block", "vs+vi", "full"],
    )
    def test_generated_solve_is_correct(self, lower_factors, options):
        for L in lower_factors.values():
            b = sparse_rhs(L.n, density=0.05, seed=13)
            module, _ = _generate_trisolve(L, b, options)
            fn = module.compile()
            x = fn(L.indptr, L.indices, L.data, b)
            np.testing.assert_allclose(x, reference_trisolve(L, b), atol=1e-9)

    def test_source_contains_no_symbolic_calls(self, lower_factors):
        L = lower_factors["block"]
        b = sparse_rhs(L.n, nnz=2, seed=1)
        module, _ = _generate_trisolve(L, b, SympilerOptions())
        # The generated numeric code must not recompute reach sets, etrees or
        # patterns: it may only index, slice and call the dense runtime.
        for forbidden in ("etree", "ereach", "inspect", "searchsorted", "reach_set("):
            assert forbidden not in module.source
        assert module.method == "triangular-solve"
        assert module.line_count > 5

    def test_constants_are_exposed(self, lower_factors):
        L = lower_factors["fem"]
        b = sparse_rhs(L.n, nnz=3, seed=2)
        module, kernel = _generate_trisolve(L, b, SympilerOptions.vi_prune_only())
        assert any(name.startswith("_C_") for name in module.constants)
        # The kernel function mirrors the embedded constants for introspection.
        assert set(module.constants) <= set(kernel.constants) | set(
            f"_C_{k}" for k in kernel.constants
        ) | set(module.constants)

    def test_peeled_columns_appear_as_literals(self, lower_factors):
        L = lower_factors["circuit"]
        b = sparse_rhs(L.n, nnz=2, seed=3)
        module, kernel = _generate_trisolve(L, b, SympilerOptions())
        if kernel.meta.get("peeled_iterations", 0):
            assert "# peeled column" in module.source

    def test_compile_is_cached(self, lower_factors):
        L = lower_factors["fem"]
        b = sparse_rhs(L.n, nnz=2, seed=4)
        module, _ = _generate_trisolve(L, b, SympilerOptions())
        assert module.compile() is module.compile()

    def test_codegen_seconds_recorded(self, lower_factors):
        L = lower_factors["fem"]
        b = sparse_rhs(L.n, nnz=2, seed=5)
        module, _ = _generate_trisolve(L, b, SympilerOptions())
        assert module.codegen_seconds >= 0.0
        module.compile()
        assert module.compile_seconds >= 0.0


class TestGeneratedCholesky:
    @pytest.mark.parametrize(
        "options",
        [
            SympilerOptions.vi_prune_only(),
            SympilerOptions(enable_low_level=False),
            SympilerOptions(),
        ],
        ids=["simplicial", "supernodal", "supernodal+lowlevel"],
    )
    def test_generated_factorization_is_correct(self, spd_matrix, options):
        compiled = Sympiler().compile_cholesky(spd_matrix, options=options)
        L = compiled.factorize(spd_matrix)
        np.testing.assert_allclose(L.to_dense(), reference_cholesky(spd_matrix), atol=1e-9)

    def test_generated_source_structure_simplicial(self, spd_matrices):
        compiled = Sympiler().compile_cholesky(
            spd_matrices["laplacian_2d"], options=SympilerOptions.vi_prune_only()
        )
        assert "simplicial left-looking factorization" in compiled.source
        assert "_C_prune_ptr" in compiled.source
        assert "transpose" not in compiled.source

    def test_generated_source_structure_supernodal(self):
        A = block_tridiagonal_spd(6, 5, seed=3, dense_coupling=True)
        compiled = Sympiler().compile_cholesky(A, options=SympilerOptions())
        assert "supernodal left-looking factorization" in compiled.source
        assert "_C_sup_start" in compiled.source
        # Loop distribution emits the streamlined single-column path.
        assert "streamlined single-column path" in compiled.source

    def test_non_positive_definite_detected_at_run_time(self):
        A = block_tridiagonal_spd(4, 4, seed=5, dense_coupling=True)
        compiled = Sympiler().compile_cholesky(A)
        bad = A.copy()
        # Make the matrix indefinite while keeping the pattern identical.
        for j in range(bad.n):
            rows = bad.col_rows(j)
            pos = int(np.searchsorted(rows, j))
            bad.data[bad.indptr[j] + pos] = -1.0
        with pytest.raises(ValueError):
            compiled.factorize(bad)


class TestBackendInfrastructure:
    def test_runtime_namespace_contents(self):
        rt = runtime_namespace()
        for name in (
            "dense_cholesky",
            "dense_lower_solve",
            "dense_solve_transposed_right",
            "small_cholesky",
            "small_lower_solve",
        ):
            assert callable(getattr(rt, name))

    def test_pattern_fingerprint_is_stable_and_sensitive(self):
        a = np.array([0, 1, 2], dtype=np.int64)
        b = np.array([0, 1, 3], dtype=np.int64)
        assert pattern_fingerprint(a) == pattern_fingerprint(a.copy())
        assert pattern_fingerprint(a) != pattern_fingerprint(b)
        assert pattern_fingerprint(a, extra="x") != pattern_fingerprint(a)

    def test_generated_module_requires_entry_point(self):
        module = GeneratedModule(
            source="y = 1\n",
            entry_name="missing",
            constants={},
            method="triangular-solve",
            codegen_seconds=0.0,
        )
        with pytest.raises(CodegenError):
            module.compile()

    def test_unsupported_method_rejected(self, lower_factors):
        L = lower_factors["fem"]
        b = sparse_rhs(L.n, nnz=2, seed=6)
        options = SympilerOptions()
        inspection = TriangularSolveInspector().inspect(L, rhs_pattern=np.nonzero(b)[0])
        context = CompilationContext(
            method="triangular-solve",
            matrix=L,
            inspection=inspection,
            options=options,
        )
        kernel = build_pipeline(options).run(lower_triangular_solve(), context)
        kernel.method = "qr"
        with pytest.raises(CodegenError):
            PythonBackend().generate(kernel, context)


class TestPersistedSourceCache:
    """Cross-process sharing of generated python sources (disk cache)."""

    def test_persist_and_reload_across_drivers(self, monkeypatch, tmp_path):
        from repro.compiler.cache import ArtifactCache
        from repro.compiler.codegen.c_backend import (
            disk_cache_stats,
            reset_disk_cache_stats,
        )
        from repro.compiler.sympiler import Sympiler
        from repro.sparse.generators import laplacian_2d

        monkeypatch.setenv("REPRO_SYMPILER_CACHE", str(tmp_path))
        reset_disk_cache_stats()
        A = laplacian_2d(6, shift=0.1)

        first = Sympiler(cache=ArtifactCache()).compile("cholesky", A)
        stats = disk_cache_stats()
        assert stats.py_writes == 1 and stats.py_reuses == 0
        assert list(tmp_path.glob("cholesky_py_*.py"))
        assert list(tmp_path.glob("cholesky_py_*.npz"))

        # A fresh driver + fresh in-memory cache (the same situation as a new
        # process) loads source and constants back instead of regenerating.
        second = Sympiler(cache=ArtifactCache()).compile("cholesky", A)
        stats = disk_cache_stats()
        assert stats.py_writes == 1 and stats.py_reuses == 1
        assert second.source == first.source
        assert set(second.constants) == set(first.constants)
        L1 = first.factorize(A)
        L2 = second.factorize(A)
        assert np.array_equal(L1.data, L2.data)

    def test_different_options_do_not_alias(self, monkeypatch, tmp_path):
        from repro.compiler.cache import ArtifactCache
        from repro.compiler.codegen.c_backend import (
            disk_cache_stats,
            reset_disk_cache_stats,
        )
        from repro.compiler.sympiler import Sympiler
        from repro.sparse.generators import laplacian_2d

        monkeypatch.setenv("REPRO_SYMPILER_CACHE", str(tmp_path))
        reset_disk_cache_stats()
        A = laplacian_2d(6, shift=0.1)
        sym = Sympiler(cache=ArtifactCache())
        sym.compile("cholesky", A, options=SympilerOptions())
        sym.compile("cholesky", A, options=SympilerOptions(enable_vs_block=False))
        # Two distinct option bundles -> two persisted modules, zero reuses.
        assert disk_cache_stats().py_writes == 2
        assert disk_cache_stats().py_reuses == 0

    def test_direct_backend_use_skips_disk(self, monkeypatch, tmp_path, lower_factors):
        """A context without a cache token (tests, ad-hoc use) stays in memory."""
        from repro.compiler.codegen.c_backend import (
            disk_cache_stats,
            reset_disk_cache_stats,
        )

        monkeypatch.setenv("REPRO_SYMPILER_CACHE", str(tmp_path))
        reset_disk_cache_stats()
        L = lower_factors["fem"]
        b = sparse_rhs(L.n, nnz=2, seed=6)
        options = SympilerOptions()
        inspection = TriangularSolveInspector().inspect(L, rhs_pattern=np.nonzero(b)[0])
        context = CompilationContext(
            method="triangular-solve",
            matrix=L,
            inspection=inspection,
            options=options,
            rhs_pattern=inspection.rhs_pattern,
        )
        kernel = build_pipeline(options).run(lower_triangular_solve(), context)
        PythonBackend().generate(kernel, context)
        assert disk_cache_stats().py_writes == 0
        assert not list(tmp_path.iterdir())

    def test_same_named_kernels_from_other_registries_do_not_alias(
        self, monkeypatch, tmp_path
    ):
        """The disk stem carries the spec's lowering identity, not just its name."""
        from repro.compiler.cache import ArtifactCache
        from repro.compiler.codegen.c_backend import (
            disk_cache_stats,
            reset_disk_cache_stats,
        )
        from repro.compiler.lowering import lower_cholesky
        from repro.compiler.registry import KernelRegistry, KernelSpec
        from repro.compiler.registry import kernel_spec as default_spec
        from repro.compiler.sympiler import Sympiler
        from repro.symbolic.inspector import CholeskyInspector
        from repro.compiler.artifacts import SympiledCholesky
        from repro.sparse.generators import laplacian_2d

        monkeypatch.setenv("REPRO_SYMPILER_CACHE", str(tmp_path))
        reset_disk_cache_stats()
        A = laplacian_2d(6, shift=0.1)
        Sympiler(cache=ArtifactCache()).compile("cholesky", A)

        def my_lower_cholesky():
            return lower_cholesky()

        custom = KernelRegistry()
        custom.register(
            KernelSpec(
                name="cholesky",
                lower=my_lower_cholesky,
                inspector_cls=CholeskyInspector,
                artifact_cls=SympiledCholesky,
                runtime_signature=("Ap", "Ai", "Ax"),
                requires_vi_prune=default_spec("cholesky").requires_vi_prune,
                inspect_kwargs=default_spec("cholesky").inspect_kwargs,
            )
        )
        Sympiler(cache=ArtifactCache(), registry=custom).compile("cholesky", A)
        # Same kernel name + same pattern + same options, but a different
        # lowering: a second persisted module, not a (wrong) reuse.
        assert disk_cache_stats().py_writes == 2
        assert disk_cache_stats().py_reuses == 0
