"""Tests for the specialized-Python code-generation backend."""

import numpy as np
import pytest

from repro.baselines.scipy_reference import reference_cholesky, reference_trisolve
from repro.compiler.codegen.python_backend import CodegenError, GeneratedModule, PythonBackend
from repro.compiler.codegen.runtime import pattern_fingerprint, runtime_namespace
from repro.compiler.lowering import lower_triangular_solve
from repro.compiler.options import SympilerOptions
from repro.compiler.sympiler import Sympiler
from repro.compiler.transforms.base import CompilationContext
from repro.compiler.transforms.pipeline import build_pipeline
from repro.sparse.generators import block_tridiagonal_spd, sparse_rhs
from repro.symbolic.inspector import TriangularSolveInspector


def _generate_trisolve(L, b, options):
    inspection = TriangularSolveInspector().inspect(L, rhs_pattern=np.nonzero(b)[0])
    context = CompilationContext(
        method="triangular-solve",
        matrix=L,
        inspection=inspection,
        options=options,
        rhs_pattern=inspection.rhs_pattern,
    )
    kernel = build_pipeline(options).run(lower_triangular_solve(), context)
    module = PythonBackend().generate(kernel, context)
    return module, kernel


class TestGeneratedTriangularSolve:
    @pytest.mark.parametrize(
        "options",
        [
            SympilerOptions.baseline(),
            SympilerOptions.vi_prune_only(),
            SympilerOptions.vs_block_only(),
            SympilerOptions(enable_low_level=False),
            SympilerOptions(),
        ],
        ids=["baseline", "vi-prune", "vs-block", "vs+vi", "full"],
    )
    def test_generated_solve_is_correct(self, lower_factors, options):
        for L in lower_factors.values():
            b = sparse_rhs(L.n, density=0.05, seed=13)
            module, _ = _generate_trisolve(L, b, options)
            fn = module.compile()
            x = fn(L.indptr, L.indices, L.data, b)
            np.testing.assert_allclose(x, reference_trisolve(L, b), atol=1e-9)

    def test_source_contains_no_symbolic_calls(self, lower_factors):
        L = lower_factors["block"]
        b = sparse_rhs(L.n, nnz=2, seed=1)
        module, _ = _generate_trisolve(L, b, SympilerOptions())
        # The generated numeric code must not recompute reach sets, etrees or
        # patterns: it may only index, slice and call the dense runtime.
        for forbidden in ("etree", "ereach", "inspect", "searchsorted", "reach_set("):
            assert forbidden not in module.source
        assert module.method == "triangular-solve"
        assert module.line_count > 5

    def test_constants_are_exposed(self, lower_factors):
        L = lower_factors["fem"]
        b = sparse_rhs(L.n, nnz=3, seed=2)
        module, kernel = _generate_trisolve(L, b, SympilerOptions.vi_prune_only())
        assert any(name.startswith("_C_") for name in module.constants)
        # The kernel function mirrors the embedded constants for introspection.
        assert set(module.constants) <= set(kernel.constants) | set(
            f"_C_{k}" for k in kernel.constants
        ) | set(module.constants)

    def test_peeled_columns_appear_as_literals(self, lower_factors):
        L = lower_factors["circuit"]
        b = sparse_rhs(L.n, nnz=2, seed=3)
        module, kernel = _generate_trisolve(L, b, SympilerOptions())
        if kernel.meta.get("peeled_iterations", 0):
            assert "# peeled column" in module.source

    def test_compile_is_cached(self, lower_factors):
        L = lower_factors["fem"]
        b = sparse_rhs(L.n, nnz=2, seed=4)
        module, _ = _generate_trisolve(L, b, SympilerOptions())
        assert module.compile() is module.compile()

    def test_codegen_seconds_recorded(self, lower_factors):
        L = lower_factors["fem"]
        b = sparse_rhs(L.n, nnz=2, seed=5)
        module, _ = _generate_trisolve(L, b, SympilerOptions())
        assert module.codegen_seconds >= 0.0
        module.compile()
        assert module.compile_seconds >= 0.0


class TestGeneratedCholesky:
    @pytest.mark.parametrize(
        "options",
        [
            SympilerOptions.vi_prune_only(),
            SympilerOptions(enable_low_level=False),
            SympilerOptions(),
        ],
        ids=["simplicial", "supernodal", "supernodal+lowlevel"],
    )
    def test_generated_factorization_is_correct(self, spd_matrix, options):
        compiled = Sympiler().compile_cholesky(spd_matrix, options=options)
        L = compiled.factorize(spd_matrix)
        np.testing.assert_allclose(L.to_dense(), reference_cholesky(spd_matrix), atol=1e-9)

    def test_generated_source_structure_simplicial(self, spd_matrices):
        compiled = Sympiler().compile_cholesky(
            spd_matrices["laplacian_2d"], options=SympilerOptions.vi_prune_only()
        )
        assert "simplicial left-looking factorization" in compiled.source
        assert "_C_prune_ptr" in compiled.source
        assert "transpose" not in compiled.source

    def test_generated_source_structure_supernodal(self):
        A = block_tridiagonal_spd(6, 5, seed=3, dense_coupling=True)
        compiled = Sympiler().compile_cholesky(A, options=SympilerOptions())
        assert "supernodal left-looking factorization" in compiled.source
        assert "_C_sup_start" in compiled.source
        # Loop distribution emits the streamlined single-column path.
        assert "streamlined single-column path" in compiled.source

    def test_non_positive_definite_detected_at_run_time(self):
        A = block_tridiagonal_spd(4, 4, seed=5, dense_coupling=True)
        compiled = Sympiler().compile_cholesky(A)
        bad = A.copy()
        # Make the matrix indefinite while keeping the pattern identical.
        for j in range(bad.n):
            rows = bad.col_rows(j)
            pos = int(np.searchsorted(rows, j))
            bad.data[bad.indptr[j] + pos] = -1.0
        with pytest.raises(ValueError):
            compiled.factorize(bad)


class TestBackendInfrastructure:
    def test_runtime_namespace_contents(self):
        rt = runtime_namespace()
        for name in (
            "dense_cholesky",
            "dense_lower_solve",
            "dense_solve_transposed_right",
            "small_cholesky",
            "small_lower_solve",
        ):
            assert callable(getattr(rt, name))

    def test_pattern_fingerprint_is_stable_and_sensitive(self):
        a = np.array([0, 1, 2], dtype=np.int64)
        b = np.array([0, 1, 3], dtype=np.int64)
        assert pattern_fingerprint(a) == pattern_fingerprint(a.copy())
        assert pattern_fingerprint(a) != pattern_fingerprint(b)
        assert pattern_fingerprint(a, extra="x") != pattern_fingerprint(a)

    def test_generated_module_requires_entry_point(self):
        module = GeneratedModule(
            source="y = 1\n",
            entry_name="missing",
            constants={},
            method="triangular-solve",
            codegen_seconds=0.0,
        )
        with pytest.raises(CodegenError):
            module.compile()

    def test_unsupported_method_rejected(self, lower_factors):
        L = lower_factors["fem"]
        b = sparse_rhs(L.n, nnz=2, seed=6)
        options = SympilerOptions()
        inspection = TriangularSolveInspector().inspect(L, rhs_pattern=np.nonzero(b)[0])
        context = CompilationContext(
            method="triangular-solve",
            matrix=L,
            inspection=inspection,
            options=options,
        )
        kernel = build_pipeline(options).run(lower_triangular_solve(), context)
        kernel.method = "qr"
        with pytest.raises(CodegenError):
            PythonBackend().generate(kernel, context)
