"""Tests for the domain-specific AST."""

import numpy as np
import pytest

from repro.compiler.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Call,
    Comment,
    ForRange,
    If,
    IntConst,
    KernelFunction,
    PeeledColumnSolve,
    PrunedColumnSolveLoop,
    SimplicialCholeskyLoop,
    SupernodalCholeskyLoop,
    SupernodeTriangularBlock,
    Var,
    pretty,
    walk,
)


def _simple_kernel():
    body = Block(
        [
            Comment("hello"),
            Assign(Var("x"), Call("copy", (Var("b"),))),
            ForRange(
                "j",
                IntConst(0),
                Var("n"),
                Block([Assign(ArrayRef("x", Var("j")), IntConst(0))]),
                role="column-loop",
            ),
        ]
    )
    return KernelFunction("k", ["b"], body, method="triangular-solve")


def test_walk_visits_all_nodes():
    kernel = _simple_kernel()
    kinds = [type(n).__name__ for n in walk(kernel)]
    assert "KernelFunction" in kinds
    assert "ForRange" in kinds
    assert "ArrayRef" in kinds
    assert kinds.count("Assign") == 2


def test_assign_validates_operator():
    with pytest.raises(ValueError):
        Assign(Var("x"), Var("y"), op="**=")


def test_annotations_builder_style():
    stmt = Comment("c").annotate(peel=True, width=3)
    assert stmt.annotations == {"peel": True, "width": 3}


def test_block_append_and_len():
    b = Block()
    assert len(b) == 0
    b.append(Comment("a"))
    assert len(b) == 1


def test_kernel_constants_registration():
    kernel = _simple_kernel()
    name = kernel.add_constant("prune_set", np.array([1, 2, 3]))
    assert name == "prune_set"
    assert "prune_set" in kernel.constants
    with pytest.raises(ValueError):
        kernel.add_constant("prune_set", np.array([4]))


def test_pretty_generic_kernel_mentions_structure():
    text = pretty(_simple_kernel())
    assert "kernel k(b)" in text
    assert "column-loop" in text
    assert "for j in 0 .. n" in text


def test_pretty_expression_forms():
    expr = BinOp("*", ArrayRef("Lx", Var("p")), ArrayRef("x", Var("j")))
    assert pretty(expr) == "(Lx[p] * x[j])"
    assert pretty(Call("sqrt", (Var("d"),))) == "sqrt(d)"


def test_pretty_if_statement():
    stmt = If(BinOp("!=", ArrayRef("x", Var("j")), IntConst(0)), Block([Comment("inner")]))
    text = pretty(stmt)
    assert "if (x[j] != 0):" in text


def test_pretty_rejects_unknown_node():
    class Bogus:
        pass

    with pytest.raises(TypeError):
        pretty(Bogus())


def test_pruned_loop_node_properties():
    node = PrunedColumnSolveLoop(np.array([3, 1, 2]), "prune_set")
    assert node.columns.dtype == np.int64
    assert node.constant_name == "prune_set"
    assert node.vectorize
    assert "pruned-column-solve" in pretty(node)


def test_peeled_column_node_properties():
    node = PeeledColumnSolve(column=5, diag_pos=10, offdiag_start=11, offdiag_end=14, rows=np.array([6, 8, 9]))
    assert node.nnz == 4
    assert not node.unroll
    assert "peeled-column-solve col=5" in pretty(node)


def test_supernode_block_node_properties():
    node = SupernodeTriangularBlock(
        sn_id=2, c0=4, width=3, n_rows=7, col_starts=np.array([10, 15, 19]),
        rows_start=10, rows_end=17,
    )
    assert node.n_offdiag_rows == 4
    assert "supernode-trsolve sn=2" in pretty(node)


def test_simplicial_loop_node_properties():
    node = SimplicialCholeskyLoop(
        n=2,
        l_indptr=np.array([0, 2, 3]),
        l_indices=np.array([0, 1, 1]),
        prune_ptr=np.array([0, 0, 1]),
        update_pos=np.array([1]),
        update_end=np.array([2]),
        a_diag_pos=np.array([0, 2]),
        a_col_end=np.array([2, 3]),
    )
    assert node.factor_nnz == 3
    assert "simplicial-cholesky n=2" in pretty(node)


def test_supernodal_loop_node_properties():
    node = SupernodalCholeskyLoop(
        n=2,
        l_indptr=np.array([0, 2, 3]),
        l_indices=np.array([0, 1, 1]),
        a_diag_pos=np.array([0, 2]),
        a_col_end=np.array([2, 3]),
        sup_start=np.array([0, 1]),
        sup_end=np.array([1, 2]),
        desc_ptr=np.array([0, 0, 1]),
        desc_pos=np.array([1]),
        desc_end=np.array([2]),
        desc_mult_end=np.array([2]),
    )
    assert node.n_supernodes == 2
    assert node.factor_nnz == 3
    assert "supernodal-cholesky" in pretty(node)


def test_kernel_repr_lists_constants():
    kernel = _simple_kernel()
    kernel.add_constant("block_set", np.array([0, 2]))
    assert "block_set" in repr(kernel)
