"""End-to-end tests of the LDLᵀ kernel (reference, both backends, solver)."""

import numpy as np
import pytest

from repro.compiler.cache import ArtifactCache
from repro.compiler.codegen.c_backend import c_compiler_available
from repro.compiler.options import SympilerOptions
from repro.compiler.sympiler import Sympiler
from repro.kernels.dense import SingularMatrixError, dense_ldlt
from repro.kernels.ldlt import ldlt_left_looking
from repro.solvers.linear_solver import SparseLinearSolver
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import laplacian_2d, saddle_point_indefinite

needs_cc = pytest.mark.skipif(
    not (c_compiler_available("cc") or c_compiler_available("gcc")),
    reason="no C compiler available",
)


def _c_options(**overrides):
    compiler = "cc" if c_compiler_available("cc") else "gcc"
    return SympilerOptions(backend="c", c_compiler=compiler, **overrides)


def _fresh_sympiler():
    return Sympiler(cache=ArtifactCache())


def _indefinite_matrix(seed=7):
    return saddle_point_indefinite(30, 12, seed=seed)


class TestDenseLDLT:
    def test_reconstruction_indefinite(self, rng):
        B = rng.normal(size=(6, 6))
        A = B + B.T  # symmetric, generically indefinite
        L, d = dense_ldlt(A)
        np.testing.assert_allclose(L @ np.diag(d) @ L.T, A, atol=1e-10)
        np.testing.assert_allclose(np.diag(L), 1.0)

    def test_zero_pivot_raises(self):
        with pytest.raises(SingularMatrixError):
            dense_ldlt(np.zeros((2, 2)))


class TestReferenceKernel:
    def test_matches_dense_on_spd_and_indefinite(self, spd_matrices):
        for A in (spd_matrices["fem"], _indefinite_matrix()):
            fac = ldlt_left_looking(A)
            np.testing.assert_allclose(
                fac.reconstruct_dense(), A.to_dense(), atol=1e-9
            )

    def test_inertia_of_saddle_point_system(self):
        A = saddle_point_indefinite(25, 10, seed=3)
        fac = ldlt_left_looking(A)
        assert fac.inertia == (25, 10, 0)

    def test_factors_solve(self, rng):
        A = _indefinite_matrix()
        fac = ldlt_left_looking(A)
        b = rng.normal(size=A.n)
        x = fac.solve(b)
        np.testing.assert_allclose(A.to_dense() @ x, b, atol=1e-8)

    def test_unit_diagonal_is_stored(self, spd_matrices):
        fac = ldlt_left_looking(spd_matrices["banded"])
        diag_positions = fac.L.indptr[:-1]
        np.testing.assert_allclose(fac.L.data[diag_positions], 1.0)


class TestCompiledLDLTPython:
    @pytest.mark.parametrize(
        "options",
        [SympilerOptions.vi_prune_only(), SympilerOptions()],
        ids=["simplicial", "supernodal"],
    )
    def test_matches_reference(self, spd_matrices, options):
        sym = _fresh_sympiler()
        for A in (spd_matrices["fem"], spd_matrices["block"], _indefinite_matrix()):
            compiled = sym.compile("ldlt", A, options=options)
            fac = compiled.factorize(A)
            ref = ldlt_left_looking(A)
            np.testing.assert_allclose(fac.L.to_dense(), ref.L.to_dense(), atol=1e-9)
            np.testing.assert_allclose(fac.d, ref.d, atol=1e-9)

    def test_vi_prune_is_forced(self):
        compiled = _fresh_sympiler().compile(
            "ldlt", laplacian_2d(6), options=SympilerOptions.baseline()
        )
        assert compiled.decisions.get("vi-prune-forced") is True
        assert "vi-prune" in compiled.applied_transformations

    def test_refactorization_scales_pivots(self):
        A = _indefinite_matrix()
        compiled = _fresh_sympiler().compile("ldlt", A)
        fac1 = compiled.factorize(A)
        A2 = A.copy()
        A2.data *= 5.0
        fac2 = compiled.factorize(A2)
        # L is scale invariant; the pivots absorb the scaling.
        np.testing.assert_allclose(fac2.L.to_dense(), fac1.L.to_dense(), atol=1e-9)
        np.testing.assert_allclose(fac2.d, 5.0 * fac1.d, atol=1e-9)

    def test_singular_matrix_raises(self):
        # A symmetric matrix with a structurally zero leading pivot.
        A = CSCMatrix.from_dense(
            np.array([[0.0, 1.0], [1.0, 0.0]])
        )
        compiled = _fresh_sympiler().compile("ldlt", A)
        with pytest.raises(ValueError, match="pivot"):
            compiled.factorize(A)

    def test_cholesky_still_rejects_what_ldlt_accepts(self):
        A = _indefinite_matrix()
        sym = _fresh_sympiler()
        chol = sym.compile("cholesky", A)
        with pytest.raises(ValueError):
            chol.factorize(A)
        fac = sym.compile("ldlt", A).factorize(A)
        assert (fac.d < 0).sum() == 12


class TestLDLTSolver:
    @pytest.mark.parametrize("ordering", ["natural", "mindeg", "rcm"])
    def test_indefinite_system_residual(self, ordering, rng):
        A = saddle_point_indefinite(40, 15, seed=11)
        solver = SparseLinearSolver(A, method="ldlt", ordering=ordering)
        b = rng.normal(size=A.n)
        x = solver.solve(b)
        assert solver.residual(x, b) <= 1e-8

    def test_spd_system_matches_cholesky_solver(self, rng):
        A = laplacian_2d(9)
        b = rng.normal(size=A.n)
        x_ldlt = SparseLinearSolver(A, method="ldlt").solve(b)
        x_chol = SparseLinearSolver(A, method="cholesky").solve(b)
        np.testing.assert_allclose(x_ldlt, x_chol, atol=1e-9)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            SparseLinearSolver(laplacian_2d(4), method="qr")

    def test_non_factorization_kernel_rejected(self):
        with pytest.raises(ValueError, match="not a factorization"):
            SparseLinearSolver(laplacian_2d(4), method="triangular-solve")

    def test_registry_alias_works(self, rng):
        # The solver resolves through the registry, so aliases work too.
        A = saddle_point_indefinite(20, 8, seed=21)
        solver = SparseLinearSolver(A, method="ldl")
        assert solver.method == "ldlt"  # canonicalized
        b = rng.normal(size=A.n)
        assert solver.residual(solver.solve(b), b) <= 1e-8

    def test_solver_exposes_pivots(self):
        A = _indefinite_matrix()
        solver = SparseLinearSolver(A, method="ldlt")
        assert solver.d is not None and (solver.d < 0).any()
        spd_solver = SparseLinearSolver(laplacian_2d(5), method="cholesky")
        assert spd_solver.d is None


@needs_cc
class TestCompiledLDLTC:
    @pytest.mark.parametrize(
        "options_kwargs",
        [dict(enable_vs_block=False, enable_low_level=False), dict()],
        ids=["simplicial", "supernodal"],
    )
    def test_matches_reference(self, spd_matrices, options_kwargs):
        sym = _fresh_sympiler()
        options = _c_options(**options_kwargs)
        for A in (spd_matrices["fem"], spd_matrices["block"], _indefinite_matrix()):
            compiled = sym.compile("ldlt", A, options=options)
            fac = compiled.factorize(A)
            ref = ldlt_left_looking(A)
            np.testing.assert_allclose(fac.L.to_dense(), ref.L.to_dense(), atol=1e-9)
            np.testing.assert_allclose(fac.d, ref.d, atol=1e-9)

    def test_indefinite_solver_residual_c_backend(self, rng):
        A = saddle_point_indefinite(40, 15, seed=13)
        solver = SparseLinearSolver(A, method="ldlt", options=_c_options())
        b = rng.normal(size=A.n)
        x = solver.solve(b)
        assert solver.residual(x, b) <= 1e-8

    def test_singular_matrix_returns_error(self):
        A = CSCMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        compiled = _fresh_sympiler().compile("ldlt", A, options=_c_options())
        with pytest.raises(ValueError, match="pivot"):
            compiled.factorize(A)

    def test_c_and_python_backends_agree(self):
        A = _indefinite_matrix()
        sym = _fresh_sympiler()
        fac_c = sym.compile("ldlt", A, options=_c_options()).factorize(A)
        fac_py = sym.compile("ldlt", A, options=SympilerOptions()).factorize(A)
        np.testing.assert_allclose(fac_c.L.to_dense(), fac_py.L.to_dense(), atol=1e-12)
        np.testing.assert_allclose(fac_c.d, fac_py.d, atol=1e-12)
