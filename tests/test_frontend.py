"""Tests for the lazy-specializing front end (`repro.solve` and friends)."""

import numpy as np
import pytest
import scipy.sparse as sp

import repro
from repro.compiler.codegen.c_backend import disk_cache_stats
from repro.compiler.options import SympilerOptions
from repro.compiler.sympiler import Sympiler
from repro.frontend import (
    AUTO_METHODS,
    IngestedMatrix,
    SpecializedSolver,
    as_csc,
    ingest,
    probe_structure,
    select_method,
    structure_fingerprint,
    sympiled,
)
from repro.runtime.facade import BatchedSolver
from repro.service.session import SolverService
from repro.solvers.cg import preconditioned_conjugate_gradient
from repro.solvers.linear_solver import SparseLinearSolver
from repro.sparse.coo import TripletBuilder
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import (
    laplacian_2d,
    random_spd,
    saddle_point_indefinite,
    unsymmetric_diag_dominant,
)


def _shared_misses() -> int:
    from repro.compiler.sympiler import _SHARED_CACHE

    return _SHARED_CACHE.stats.misses


# --------------------------------------------------------------------------- #
# Ingest layer
# --------------------------------------------------------------------------- #
class TestIngest:
    def test_csc_passthrough_is_identity(self):
        A = laplacian_2d(6)
        ing = ingest(A)
        assert ing.csc is A  # same object, no copy
        assert ing.source_format == "csc"
        assert as_csc(A) is A

    def test_scipy_formats(self):
        A = laplacian_2d(6)
        S = A.to_scipy()
        for form, tag in ((S.tocsc(), "scipy"), (S.tocsr(), "scipy"), (S.tocoo(), "scipy")):
            ing = ingest(form)
            assert ing.source_format == tag
            assert ing.csc.pattern_equal(A)
            np.testing.assert_array_equal(ing.csc.data, A.data)

    def test_coo_matrix(self):
        builder = TripletBuilder(3, 3)
        for i, j, v in [(0, 0, 4.0), (1, 1, 5.0), (2, 2, 6.0), (1, 0, 1.0)]:
            builder.add(i, j, v)
        coo = builder.to_coo()
        ing = ingest(coo)
        assert ing.source_format == "coo"
        np.testing.assert_array_equal(ing.csc.to_dense(), coo.to_csc().to_dense())

    def test_triplet_tuples(self):
        rows = np.array([0, 1, 1])
        cols = np.array([0, 0, 1])
        vals = np.array([4.0, 1.0, 3.0])
        a = as_csc((rows, cols, vals))
        b = as_csc((rows, cols, vals, (2, 2)))
        c = as_csc((vals, (rows, cols)))  # scipy-style
        ref = np.array([[4.0, 0.0], [1.0, 3.0]])
        for M in (a, b, c):
            np.testing.assert_array_equal(M.to_dense(), ref)

    def test_dense_array(self):
        D = np.array([[4.0, 1.0], [1.0, 3.0]])
        ing = ingest(D)
        assert ing.source_format == "dense"
        np.testing.assert_array_equal(ing.csc.to_dense(), D)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            ingest("not a matrix")
        with pytest.raises(TypeError):
            ingest(np.ones(5))  # 1-D

    def test_fingerprint_is_structural(self):
        A = laplacian_2d(6)
        B = A.with_values(A.data * 3.0)
        C = laplacian_2d(7)
        assert structure_fingerprint(A) == structure_fingerprint(B)
        assert structure_fingerprint(A) != structure_fingerprint(C)

    def test_dtype_recorded_before_coercion(self):
        D = np.array([[4, 1], [1, 3]], dtype=np.float32)
        ing = ingest(D)
        assert ing.dtype == "float32"
        assert ing.csc.data.dtype == np.float64
        assert isinstance(ing, IngestedMatrix)


# --------------------------------------------------------------------------- #
# Structural probes and auto-selection
# --------------------------------------------------------------------------- #
class TestProbes:
    def test_spd_routes_to_cholesky(self):
        assert select_method(laplacian_2d(8)) == "cholesky"
        assert select_method(random_spd(40, 0.05, seed=1)) == "cholesky"

    def test_symmetric_indefinite_routes_to_ldlt(self):
        assert select_method(saddle_point_indefinite(30, 10)) == "ldlt"

    def test_unsymmetric_routes_to_lu(self):
        assert select_method(unsymmetric_diag_dominant(40)) == "lu"

    def test_large_spd_routes_to_pcg(self):
        A = laplacian_2d(10)
        assert select_method(A, iterative_threshold=50) == "pcg"
        assert select_method(A, iterative_threshold=10_000) == "cholesky"

    def test_large_unsymmetric_stays_lu(self):
        # CG requires SPD; size alone must not route unsymmetric input to it.
        A = unsymmetric_diag_dominant(80)
        assert select_method(A, iterative_threshold=50) == "lu"

    def test_probe_report_fields(self):
        report = probe_structure(laplacian_2d(6))
        assert report.square and report.symmetric_pattern and report.symmetric_values
        assert report.positive_diagonal
        assert report.n == 36
        assert report.method in AUTO_METHODS
        assert report.reason

    def test_rejects_non_square(self):
        rect = CSCMatrix.from_dense(np.ones((3, 2)))
        with pytest.raises(ValueError):
            probe_structure(rect)


# --------------------------------------------------------------------------- #
# Auto-selection is bitwise-identical to the explicit APIs, per route
# --------------------------------------------------------------------------- #
class TestAutoSelectionBitwise:
    def test_cholesky_route(self, rng):
        A = random_spd(48, 0.06, seed=7)
        b = rng.normal(size=A.n)
        front = SpecializedSolver()
        x = front.solve(A.to_scipy(), b)
        x_ref = SparseLinearSolver(A, method="cholesky", ordering="mindeg").solve(b)
        assert front.stats.methods == {"cholesky": 1}
        np.testing.assert_array_equal(x, x_ref)

    def test_ldlt_route(self, rng):
        K = saddle_point_indefinite(24, 8, seed=2)
        b = rng.normal(size=K.n)
        front = SpecializedSolver()
        x = front.solve(K.to_scipy(), b)
        x_ref = SparseLinearSolver(K, method="ldlt", ordering="mindeg").solve(b)
        assert front.stats.methods == {"ldlt": 1}
        np.testing.assert_array_equal(x, x_ref)

    def test_lu_route(self, rng):
        J = unsymmetric_diag_dominant(40, seed=3)
        b = rng.normal(size=J.n)
        front = SpecializedSolver()
        x = front.solve(J.to_scipy(), b)
        x_ref = SparseLinearSolver(J, method="lu", ordering="mindeg").solve(b)
        assert front.stats.methods == {"lu": 1}
        np.testing.assert_array_equal(x, x_ref)

    def test_pcg_route(self):
        A = laplacian_2d(9)
        b = np.ones(A.n)
        front = SpecializedSolver(iterative_threshold=50)
        x = front.solve(A.to_scipy(), b)
        ref = preconditioned_conjugate_gradient(A, b)
        assert front.stats.methods == {"pcg": 1}
        assert front.last_cg_result.converged
        np.testing.assert_array_equal(x, ref.x)

    def test_explicit_method_override_wins(self, rng):
        # Probes would choose cholesky for this SPD matrix; method= pins ldlt.
        A = random_spd(30, 0.08, seed=5)
        b = rng.normal(size=A.n)
        front = SpecializedSolver()
        x = front.solve(A, b, method="ldlt")
        x_ref = SparseLinearSolver(A, method="ldlt", ordering="mindeg").solve(b)
        assert front.stats.methods == {"ldlt": 1}
        np.testing.assert_array_equal(x, x_ref)

    def test_instance_method_pins_route(self, rng):
        A = random_spd(30, 0.08, seed=6)
        b = rng.normal(size=A.n)
        front = SpecializedSolver(method="lu")
        x = front.solve(A, b)
        x_ref = SparseLinearSolver(A, method="lu", ordering="mindeg").solve(b)
        np.testing.assert_array_equal(x, x_ref)

    def test_unknown_method_rejected(self):
        front = SpecializedSolver()
        with pytest.raises(ValueError):
            front.solve(laplacian_2d(4), np.ones(16), method="qr")
        with pytest.raises(ValueError):
            SpecializedSolver(method="qr")


class TestCholeskyEscape:
    def test_heuristic_misdetection_falls_back_to_ldlt(self):
        # Symmetric with a positive diagonal — the cheap SPD heuristic says
        # cholesky — but indefinite (eigenvalues 3, -1).
        D = np.array([[1.0, 2.0], [2.0, 1.0]])
        front = SpecializedSolver()
        x = front.solve(D, np.ones(2))
        assert front.stats.cholesky_escapes == 1
        assert front.stats.methods == {"ldlt": 1}
        np.testing.assert_allclose(D @ x, np.ones(2), atol=1e-12)

    def test_explicit_cholesky_still_escapes_like_auto(self):
        # The escape keys on the numeric breakdown, not on who chose the
        # method; the result must still solve the system.
        D = np.array([[1.0, 2.0], [2.0, 1.0]])
        front = SpecializedSolver()
        x = front.solve(D, np.ones(2), method="cholesky")
        np.testing.assert_allclose(D @ x, np.ones(2), atol=1e-12)


# --------------------------------------------------------------------------- #
# Lazy specialization: warm calls are numeric-only
# --------------------------------------------------------------------------- #
class TestLazySpecialization:
    def test_second_call_zero_compiles_zero_inspections(self, rng):
        A = random_spd(40, 0.06, seed=9)
        S = A.to_scipy()
        front = SpecializedSolver()
        front.solve(S, rng.normal(size=A.n))  # cold: specialize
        misses_before = _shared_misses()
        disk_before = disk_cache_stats().as_dict()
        x = front.solve(S, rng.normal(size=A.n))  # warm: numeric only
        assert _shared_misses() == misses_before  # zero symbolic inspections
        disk_after = disk_cache_stats().as_dict()
        assert disk_after["compiles"] == disk_before["compiles"]
        assert disk_after["py_writes"] == disk_before["py_writes"]
        assert front.stats.specializations == 1
        assert front.stats.structure_hits == 1
        assert np.isfinite(x).all()

    def test_same_values_reuse_factors(self, rng):
        A = random_spd(30, 0.08, seed=10)
        b1, b2 = rng.normal(size=A.n), rng.normal(size=A.n)
        front = SpecializedSolver()
        front.solve(A, b1)
        refact_before = front.stats.refactorizations
        front.solve(A, b2)
        assert front.stats.refactorizations == refact_before
        assert front.stats.value_hits >= 1

    def test_new_values_refactorize_without_respecializing(self, rng):
        A = random_spd(30, 0.08, seed=11)
        b = rng.normal(size=A.n)
        front = SpecializedSolver()
        x1 = front.solve(A, b)
        x2 = front.solve(A.with_values(A.data * 2.0), b)
        assert front.stats.specializations == 1
        assert front.stats.refactorizations == 1
        np.testing.assert_allclose(x2, x1 / 2.0, atol=1e-8)

    def test_warm_pcg_route_zero_compiles(self):
        A = laplacian_2d(8)
        b = np.ones(A.n)
        front = SpecializedSolver(iterative_threshold=10)
        front.solve(A, b)
        misses_before = _shared_misses()
        front.solve(A, b * 2.0)
        assert _shared_misses() == misses_before
        assert front.stats.structure_hits == 1

    def test_distinct_structures_specialize_separately(self, rng):
        front = SpecializedSolver()
        for n in (5, 6, 7):
            A = laplacian_2d(n)
            front.solve(A, rng.normal(size=A.n))
        assert front.stats.specializations == 3
        assert front.cache_info()["size"] == 3

    def test_lru_eviction(self, rng):
        front = SpecializedSolver(max_specializations=2)
        for n in (5, 6, 7):
            A = laplacian_2d(n)
            front.solve(A, rng.normal(size=A.n))
        assert front.cache_info()["size"] == 2
        # Oldest structure (n=5) was evicted; solving it again respecializes.
        A = laplacian_2d(5)
        front.solve(A, rng.normal(size=A.n))
        assert front.stats.specializations == 4

    def test_clear(self):
        front = SpecializedSolver()
        A = laplacian_2d(5)
        front.solve(A, np.ones(A.n))
        front.clear()
        assert front.cache_info()["size"] == 0

    def test_module_level_solve_uses_default_instance(self):
        A = laplacian_2d(5)
        before = repro.frontend.default_frontend().stats.specializations
        x = repro.solve(A, np.ones(A.n))
        assert np.isfinite(x).all()
        after = repro.frontend.default_frontend().stats.specializations
        assert after >= before


# --------------------------------------------------------------------------- #
# The @sympiled decorator
# --------------------------------------------------------------------------- #
class TestSympiledDecorator:
    def test_fixed_pattern_changing_values_loop(self):
        A0 = laplacian_2d(6)

        @sympiled
        def step(scale):
            return A0.with_values(A0.data * scale), np.ones(A0.n)

        x1 = step(1.0)
        x2 = step(2.0)
        np.testing.assert_allclose(x2, x1 / 2.0, atol=1e-8)
        info = step.cache_info()
        assert info["specializations"] == 1
        assert info["refactorizations"] == 1

    def test_with_arguments(self, rng):
        A = random_spd(24, 0.1, seed=13)

        @sympiled(method="ldlt", ordering="natural")
        def system():
            return A, np.ones(A.n)

        x = system()
        x_ref = SparseLinearSolver(A, method="ldlt", ordering="natural").solve(
            np.ones(A.n)
        )
        np.testing.assert_array_equal(x, x_ref)
        assert system.solver.method == "ldlt"

    def test_rejects_non_pair_return(self):
        @sympiled
        def broken():
            return laplacian_2d(4)

        with pytest.raises(TypeError):
            broken()


# --------------------------------------------------------------------------- #
# Ingest wired into the explicit APIs (satellite: scipy/COO everywhere)
# --------------------------------------------------------------------------- #
class TestIngestInExplicitAPIs:
    def test_sparse_linear_solver_scipy_bitwise(self, rng):
        A = laplacian_2d(7)
        b = rng.normal(size=A.n)
        x_csc = SparseLinearSolver(A).solve(b)
        x_scipy = SparseLinearSolver(A.to_scipy()).solve(b)
        np.testing.assert_array_equal(x_scipy, x_csc)

    def test_sparse_linear_solver_csc_object_unchanged(self):
        # The historical path: a CSCMatrix input is used as-is, no copy.
        A = laplacian_2d(6)
        solver = SparseLinearSolver(A)
        assert solver.A is A

    def test_refactorize_accepts_scipy(self, rng):
        A = laplacian_2d(6)
        solver = SparseLinearSolver(A)
        b = rng.normal(size=A.n)
        x1 = solver.solve(b)
        solver.factorize((A.to_scipy() * 2.0).tocsc())
        np.testing.assert_allclose(solver.solve(b), x1 / 2.0, atol=1e-8)

    def test_batched_solver_scipy_scenarios_bitwise(self, rng):
        A = laplacian_2d(6)
        scales = (1.0, 2.5, 4.0)
        csc_scenarios = [A.with_values(A.data * s) for s in scales]
        scipy_scenarios = [(A.to_scipy() * s).tocsc() for s in scales]
        b = rng.normal(size=A.n)

        batched_csc = BatchedSolver(A)
        batched_scipy = BatchedSolver(A.to_scipy())
        xs_csc = [h.solve(b) for h in batched_csc.factorize_batch(csc_scenarios)]
        xs_scipy = [h.solve(b) for h in batched_scipy.factorize_batch(scipy_scenarios)]
        for x_csc, x_scipy in zip(xs_csc, xs_scipy):
            np.testing.assert_array_equal(x_scipy, x_csc)

    def test_batched_solver_mixed_forms(self):
        A = laplacian_2d(5)
        handles = BatchedSolver(A).factorize_batch(
            [A, A.to_scipy().tocsr(), (A.to_scipy() * 2.0).tocoo()]
        )
        assert all(h.ok for h in handles)

    def test_service_register_pattern_scipy(self):
        A = laplacian_2d(6)
        svc = SolverService()
        try:
            handle = svc.register_pattern(A.to_scipy(), ordering="natural")
            x = svc.solve(handle, A.data, np.ones(A.n))
            svc_ref = svc.register_pattern(A, ordering="natural")
            assert svc_ref.handle_id == handle.handle_id  # same fingerprint
            np.testing.assert_allclose(A.matvec(x), np.ones(A.n), atol=1e-7)
        finally:
            svc.close()


# --------------------------------------------------------------------------- #
# num_threads unification (satellite: pcg gained the knob)
# --------------------------------------------------------------------------- #
class TestNumThreadsUnification:
    def test_pcg_accepts_num_threads_bitwise_serial(self):
        A = laplacian_2d(7)
        b = np.ones(A.n)
        r0 = preconditioned_conjugate_gradient(A, b)
        r1 = preconditioned_conjugate_gradient(A, b, num_threads=2)
        np.testing.assert_array_equal(r0.x, r1.x)
        assert r0.iterations == r1.iterations

    def test_solver_pcg_method_passes_num_threads(self):
        A = laplacian_2d(6)
        solver = SparseLinearSolver(A)
        b = np.ones(A.n)
        r0 = solver.pcg(b)
        r1 = solver.pcg(b, num_threads=2)
        np.testing.assert_array_equal(r0.x, r1.x)

    def test_frontend_solve_passes_num_threads(self, rng):
        A = random_spd(30, 0.08, seed=14)
        b = rng.normal(size=A.n)
        front = SpecializedSolver()
        x0 = front.solve(A, b)
        x1 = front.solve(A, b, num_threads=2)
        np.testing.assert_array_equal(x0, x1)


# --------------------------------------------------------------------------- #
# Property tests: generated matrices, probe vs. explicit API, bitwise
# --------------------------------------------------------------------------- #
_PROPERTY_CASES = [
    ("spd-random", lambda: random_spd(36, 0.08, seed=21), "cholesky"),
    ("spd-laplacian", lambda: laplacian_2d(7), "cholesky"),
    ("sym-indefinite", lambda: saddle_point_indefinite(20, 8, seed=22), "ldlt"),
    ("unsym-diag-dominant", lambda: unsymmetric_diag_dominant(44, seed=23), "lu"),
]


class TestSelectionProperties:
    @pytest.mark.parametrize(
        "make,expected", [(m, e) for _, m, e in _PROPERTY_CASES],
        ids=[name for name, _, _ in _PROPERTY_CASES],
    )
    def test_probe_matches_explicit_api_bitwise(self, make, expected, rng):
        A = make()
        b = rng.normal(size=A.n)
        assert select_method(A) == expected
        front = SpecializedSolver()
        x = front.solve(sp.csc_matrix(A.to_scipy()), b)
        x_ref = SparseLinearSolver(A, method=expected, ordering="mindeg").solve(b)
        np.testing.assert_array_equal(x, x_ref)

    def test_large_sparse_goes_iterative(self):
        A = laplacian_2d(12)  # n = 144
        b = np.ones(A.n)
        front = SpecializedSolver(iterative_threshold=100)
        x = front.solve(A, b)
        ref = preconditioned_conjugate_gradient(A, b)
        assert front.stats.methods == {"pcg": 1}
        np.testing.assert_array_equal(x, ref.x)

    @pytest.mark.parametrize("method", ["cholesky", "ldlt", "pcg"])
    def test_override_beats_probe_everywhere(self, method, rng):
        A = laplacian_2d(7)  # probes say cholesky at default threshold
        b = rng.normal(size=A.n)
        front = SpecializedSolver()
        x = front.solve(A, b, method=method)
        if method == "pcg":
            x_ref = preconditioned_conjugate_gradient(A, b).x
        else:
            x_ref = SparseLinearSolver(A, method=method, ordering="mindeg").solve(b)
        assert front.stats.methods == {method: 1}
        np.testing.assert_array_equal(x, x_ref)
