"""Thread-safety of the compiler caches: single-flight, pinning, counters."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.compiler.cache import ArtifactCache
from repro.compiler.codegen.c_backend import (
    DiskCacheStats,
    disk_cache_stats,
    reset_disk_cache_stats,
)
from repro.compiler.options import SympilerOptions
from repro.compiler.sympiler import Sympiler
from repro.sparse.generators import laplacian_2d


class TestSingleFlight:
    def test_concurrent_builds_collapse_to_one(self):
        cache = ArtifactCache()
        builds = []
        barrier = threading.Barrier(6)
        results = [None] * 6

        def builder():
            builds.append(threading.get_ident())
            time.sleep(0.05)  # widen the race window
            return object()

        def worker(i):
            barrier.wait(timeout=10)
            results[i] = cache.get_or_build("key", builder)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(builds) == 1
        assert all(r is results[0] and r is not None for r in results)
        assert cache.stats.coalesced >= 1

    def test_sequential_behaviour_unchanged(self):
        cache = ArtifactCache()
        first = cache.get_or_build("k", lambda: "built")
        second = cache.get_or_build("k", lambda: "rebuilt")
        assert first == second == "built"
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert cache.stats.coalesced == 0

    def test_failed_leader_lets_a_waiter_take_over(self):
        cache = ArtifactCache()
        attempts = []
        release = threading.Event()

        def failing_builder():
            attempts.append("fail")
            release.wait(timeout=5)
            raise RuntimeError("leader build failed")

        def good_builder():
            attempts.append("good")
            return "artifact"

        outcome = {}

        def leader():
            try:
                cache.get_or_build("k", failing_builder)
            except RuntimeError as exc:
                outcome["leader"] = exc

        def waiter():
            outcome["waiter"] = cache.get_or_build("k", good_builder)

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        while not attempts:  # the leader is inside its builder
            time.sleep(0.001)
        waiter_thread = threading.Thread(target=waiter)
        waiter_thread.start()
        time.sleep(0.02)  # let the waiter park on the in-flight event
        release.set()
        leader_thread.join(timeout=10)
        waiter_thread.join(timeout=10)
        # The leader saw its own failure; the waiter rebuilt successfully.
        assert isinstance(outcome["leader"], RuntimeError)
        assert outcome["waiter"] == "artifact"
        assert attempts == ["fail", "good"]

    def test_concurrent_compiles_share_one_artifact(self, monkeypatch, tmp_path):
        """End to end: racing Sympiler.compile calls produce one artifact."""
        monkeypatch.setenv("REPRO_SYMPILER_CACHE", str(tmp_path))
        reset_disk_cache_stats()
        A = laplacian_2d(7, shift=0.1)
        sym = Sympiler(SympilerOptions(), cache=ArtifactCache())
        barrier = threading.Barrier(4)
        artifacts = [None] * 4
        errors = []

        def compile_one(i):
            try:
                barrier.wait(timeout=10)
                artifacts[i] = sym.compile("cholesky", A)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=compile_one, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert all(a is artifacts[0] and a is not None for a in artifacts)
        # Exactly one code generation hit the disk (python backend): the
        # double-compile would have written once per loser as well.
        assert disk_cache_stats().as_dict()["py_writes"] == 1
        L = artifacts[0].factorize(A)
        assert np.isfinite(L.data).all()


class TestPinningAndRemoval:
    def test_pinned_entries_survive_lru_pressure(self):
        cache = ArtifactCache(maxsize=2)
        cache.put("a", "A")
        cache.pin("a")
        cache.put("b", "B")
        cache.put("c", "C")  # evicts b (a is pinned despite being LRU)
        assert cache.get("a") == "A"
        assert cache.get("b") is None
        assert cache.get("c") == "C"
        assert cache.stats.evictions == 1

    def test_all_pinned_overflows_instead_of_dropping(self):
        cache = ArtifactCache(maxsize=1)
        cache.put("a", "A")
        cache.pin("a")
        cache.put("b", "B")
        cache.pin("b")
        assert len(cache) == 2  # over budget, but nothing pinned was dropped
        cache.unpin("a")
        cache.put("c", "C")  # now a can go
        assert cache.get("a") is None

    def test_remove_unpins_and_counts(self):
        cache = ArtifactCache()
        cache.put("a", "A")
        cache.pin("a")
        assert cache.remove("a") == "A"
        assert cache.remove("a") is None  # idempotent
        assert cache.stats.removals == 1
        assert cache.pinned_count == 0

    def test_artifact_level_pin_and_remove(self):
        cache = ArtifactCache()
        artifact = object()
        cache.put("k1", artifact)
        cache.put("k2", artifact)
        assert set(cache.pin_artifact(artifact)) == {"k1", "k2"}
        assert cache.pinned_count == 2
        assert set(cache.remove_artifact(artifact)) == {"k1", "k2"}
        assert len(cache) == 0

    def test_pins_are_refcounted_across_holders(self):
        """Two holders pin the same artifact; one releasing keeps it pinned."""
        cache = ArtifactCache(maxsize=1)
        artifact = object()
        cache.put("k", artifact)
        cache.pin_artifact(artifact)  # holder 1
        cache.pin_artifact(artifact)  # holder 2
        assert cache.release_artifact(artifact) == []  # holder 1 lets go
        cache.put("other", "X")  # LRU pressure: k must survive (still pinned)
        assert cache.get("k") is artifact
        assert cache.release_artifact(artifact) == ["k"]  # last holder: gone
        assert cache.get("k") is None

    def test_unpin_artifact_releases_without_removing(self):
        cache = ArtifactCache()
        artifact = object()
        cache.put("k", artifact)
        cache.pin_artifact(artifact)
        assert cache.unpin_artifact(artifact) == ["k"]
        assert cache.pinned_count == 0
        assert cache.get("k") is artifact  # resident, just evictable again

    def test_eviction_listener_sees_both_reasons(self):
        seen = []
        cache = ArtifactCache(maxsize=1)
        cache.add_eviction_listener(lambda key, artifact, reason: seen.append((key, reason)))
        cache.put("a", "A")
        cache.put("b", "B")  # LRU-evicts a
        cache.remove("b")
        assert seen == [("a", "lru"), ("b", "removed")]


class TestDiskCacheStatsThreadSafety:
    def test_bump_is_atomic_under_contention(self):
        stats = DiskCacheStats()

        def bump():
            for _ in range(2000):
                stats.bump("py_writes")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.as_dict()["py_writes"] == 16000

    def test_reset_zeroes_all_counters(self):
        stats = DiskCacheStats()
        for name in ("compiles", "reuses", "py_writes", "py_reuses"):
            stats.bump(name, 3)
        stats.reset()
        assert all(v == 0 for v in stats.as_dict().values())

    def test_global_reset_helper(self):
        disk_cache_stats().bump("reuses")
        reset_disk_cache_stats()
        assert disk_cache_stats().as_dict()["reuses"] == 0


class TestCacheStatsSurface:
    def test_as_dict_carries_new_counters(self):
        cache = ArtifactCache()
        payload = cache.stats.as_dict()
        for key in ("hits", "misses", "evictions", "coalesced", "removals", "hit_rate"):
            assert key in payload

    def test_invalid_percentilelike_inputs_rejected(self):
        with pytest.raises(ValueError):
            ArtifactCache(maxsize=0)
