"""Tests for fill-reducing orderings."""

import numpy as np
import pytest

from repro.sparse.generators import arrow_spd, laplacian_2d
from repro.sparse.csc import CSCMatrix
from repro.sparse.ordering import (
    minimum_degree_ordering,
    natural_ordering,
    ordering_by_name,
    reverse_cuthill_mckee,
)
from repro.symbolic.fill_pattern import symbolic_factor_nnz


def _is_valid_permutation(perm, n):
    return sorted(int(v) for v in perm.perm) == list(range(n))


def test_natural_ordering_is_identity(spd_matrix):
    p = natural_ordering(spd_matrix)
    assert p.is_identity()


def test_minimum_degree_is_a_permutation(spd_matrix):
    p = minimum_degree_ordering(spd_matrix)
    assert _is_valid_permutation(p, spd_matrix.n)


def test_rcm_is_a_permutation(spd_matrix):
    p = reverse_cuthill_mckee(spd_matrix)
    assert _is_valid_permutation(p, spd_matrix.n)


def test_minimum_degree_reduces_fill_on_arrow_matrix():
    # The arrowhead matrix with the dense row/column *first* is the classic
    # example where the natural ordering produces a nearly dense factor while
    # minimum degree keeps it sparse (it pushes the dense column to the end).
    from repro.sparse.permutation import Permutation

    A = arrow_spd(40, 1, seed=3)
    reverse = Permutation(np.arange(A.n - 1, -1, -1, dtype=np.int64))
    bad = reverse.symmetric_permute(A)  # dense row becomes row 0
    natural_fill = symbolic_factor_nnz(bad)
    p = minimum_degree_ordering(bad)
    permuted_fill = symbolic_factor_nnz(p.symmetric_permute(bad))
    assert permuted_fill < natural_fill


def test_rcm_reduces_bandwidth_on_grid():
    A = laplacian_2d(8)
    p = reverse_cuthill_mckee(A)
    B = p.symmetric_permute(A)

    def bandwidth(M):
        worst = 0
        for j in range(M.n_cols):
            rows = M.col_rows(j)
            if rows.size:
                worst = max(worst, int(np.max(np.abs(rows - j))))
        return worst

    # RCM never increases the bandwidth of a shuffled grid dramatically;
    # compare against a random symmetric permutation of the same matrix.
    rng = np.random.default_rng(0)
    from repro.sparse.permutation import Permutation

    shuffled = Permutation(rng.permutation(A.n)).symmetric_permute(A)
    assert bandwidth(B) <= bandwidth(shuffled)


def test_orderings_are_deterministic(spd_matrices):
    A = spd_matrices["fem"]
    p1 = minimum_degree_ordering(A)
    p2 = minimum_degree_ordering(A)
    assert p1 == p2
    r1 = reverse_cuthill_mckee(A)
    r2 = reverse_cuthill_mckee(A)
    assert r1 == r2


def test_orderings_require_square_matrices():
    rect = CSCMatrix.from_dense(np.ones((2, 3)))
    for fn in (natural_ordering, minimum_degree_ordering, reverse_cuthill_mckee):
        with pytest.raises(ValueError):
            fn(rect)


def test_empty_matrix_orderings():
    A = CSCMatrix.empty(0, 0)
    assert minimum_degree_ordering(A).n == 0
    assert reverse_cuthill_mckee(A).n == 0


def test_ordering_by_name_lookup():
    assert ordering_by_name("natural") is natural_ordering
    assert ordering_by_name("mindeg") is minimum_degree_ordering
    assert ordering_by_name("AMD") is minimum_degree_ordering
    assert ordering_by_name("rcm") is reverse_cuthill_mckee
    with pytest.raises(ValueError):
        ordering_by_name("does-not-exist")


def test_rcm_handles_disconnected_components():
    # Block-diagonal matrix: two disconnected 3-node chains.
    dense = np.zeros((6, 6))
    for i, j in [(0, 1), (1, 2), (3, 4), (4, 5)]:
        dense[i, j] = dense[j, i] = -1.0
    np.fill_diagonal(dense, 3.0)
    A = CSCMatrix.from_dense(dense)
    p = reverse_cuthill_mckee(A)
    assert _is_valid_permutation(p, 6)
    p2 = minimum_degree_ordering(A)
    assert _is_valid_permutation(p2, 6)
