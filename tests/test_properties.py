"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.scipy_reference import reference_cholesky, reference_trisolve
from repro.compiler.sympiler import Sympiler
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.permutation import Permutation
from repro.sparse.utils import lower_triangle
from repro.symbolic.etree import elimination_tree, postorder
from repro.symbolic.fill_pattern import cholesky_pattern
from repro.symbolic.inspector import TriangularSolveInspector
from repro.symbolic.reach import reach_set
from repro.symbolic.supernodes import triangular_supernodes

_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
@st.composite
def coo_matrices(draw, max_n=8, max_entries=30):
    n_rows = draw(st.integers(1, max_n))
    n_cols = draw(st.integers(1, max_n))
    n_entries = draw(st.integers(0, max_entries))
    rows = draw(
        st.lists(st.integers(0, n_rows - 1), min_size=n_entries, max_size=n_entries)
    )
    cols = draw(
        st.lists(st.integers(0, n_cols - 1), min_size=n_entries, max_size=n_entries)
    )
    vals = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=n_entries,
            max_size=n_entries,
        )
    )
    return COOMatrix(n_rows, n_cols, np.array(rows, dtype=np.int64),
                     np.array(cols, dtype=np.int64), np.array(vals))


@st.composite
def spd_matrices_strategy(draw, max_n=10):
    n = draw(st.integers(2, max_n))
    density = draw(st.floats(0.0, 0.6))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    dense = np.zeros((n, n))
    mask = rng.random((n, n)) < density
    vals = -np.abs(rng.normal(size=(n, n)))
    dense[mask] = vals[mask]
    dense = np.tril(dense, -1)
    dense = dense + dense.T
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1.0)
    return CSCMatrix.from_dense(dense)


@st.composite
def lower_triangular_strategy(draw, max_n=10):
    A = draw(spd_matrices_strategy(max_n=max_n))
    return CSCMatrix.from_dense(np.linalg.cholesky(
        A.to_dense() if not A.is_lower_triangular() else A.to_dense()
    ))


# --------------------------------------------------------------------------- #
# Sparse containers
# --------------------------------------------------------------------------- #
@_settings
@given(coo_matrices())
def test_coo_to_csc_preserves_dense_form(coo):
    np.testing.assert_allclose(coo.to_csc().to_dense(), coo.to_dense(), atol=1e-12)


@_settings
@given(coo_matrices())
def test_csc_transpose_is_involutive(coo):
    A = coo.to_csc()
    np.testing.assert_allclose(A.transpose().transpose().to_dense(), A.to_dense())


@_settings
@given(coo_matrices())
def test_csc_matvec_matches_dense(coo):
    A = coo.to_csc()
    rng = np.random.default_rng(0)
    x = rng.normal(size=A.n_cols)
    np.testing.assert_allclose(A.matvec(x), A.to_dense() @ x, atol=1e-9)


@_settings
@given(st.integers(1, 30), st.integers(0, 2**31 - 1))
def test_permutation_roundtrip(n, seed):
    rng = np.random.default_rng(seed)
    p = Permutation(rng.permutation(n))
    x = rng.normal(size=n)
    np.testing.assert_allclose(p.apply_inverse_vec(p.apply_vec(x)), x)
    assert p.compose(p.inverse()).is_identity()


@_settings
@given(spd_matrices_strategy(), st.integers(0, 2**31 - 1))
def test_symmetric_permutation_preserves_spectrum(A, seed):
    rng = np.random.default_rng(seed)
    p = Permutation(rng.permutation(A.n))
    B = p.symmetric_permute(A)
    np.testing.assert_allclose(
        np.sort(np.linalg.eigvalsh(B.to_dense())),
        np.sort(np.linalg.eigvalsh(A.to_dense())),
        atol=1e-8,
    )


# --------------------------------------------------------------------------- #
# Symbolic invariants
# --------------------------------------------------------------------------- #
@_settings
@given(spd_matrices_strategy())
def test_etree_parent_exceeds_child(A):
    parent = elimination_tree(A)
    for j, p in enumerate(parent):
        assert p == -1 or p > j
    assert sorted(postorder(parent).tolist()) == list(range(A.n))


@_settings
@given(spd_matrices_strategy())
def test_cholesky_pattern_contains_tril_and_matches_numeric_factor(A):
    indptr, indices = cholesky_pattern(A)
    tril = lower_triangle(A)
    numeric = np.abs(reference_cholesky(A)) > 1e-12
    for j in range(A.n):
        predicted = set(indices[indptr[j] : indptr[j + 1]].tolist())
        assert set(tril.col_rows(j).tolist()) <= predicted
        assert set(np.nonzero(numeric[:, j])[0].tolist()) <= predicted


@_settings
@given(lower_triangular_strategy(), st.integers(0, 2**31 - 1))
def test_reach_set_is_closed_and_contains_sources(L, seed):
    rng = np.random.default_rng(seed)
    n_sources = rng.integers(1, max(2, L.n // 2))
    sources = rng.choice(L.n, size=n_sources, replace=False)
    reach = reach_set(L, sources)
    reach_set_py = set(int(v) for v in reach)
    assert set(int(s) for s in sources) <= reach_set_py
    # Closure: every dependent of a reached column is reached.
    for j in reach_set_py:
        rows = L.col_rows(j)
        for i in rows[rows > j]:
            assert int(i) in reach_set_py


@_settings
@given(lower_triangular_strategy())
def test_triangular_supernodes_partition_columns(L):
    partition = triangular_supernodes(L)
    covered = []
    for s, c0, c1 in partition.iter_supernodes():
        covered.extend(range(c0, c1))
    assert covered == list(range(L.n))


# --------------------------------------------------------------------------- #
# Generated-code invariants
# --------------------------------------------------------------------------- #
@_settings
@given(lower_triangular_strategy(), st.integers(0, 2**31 - 1))
def test_generated_triangular_solve_matches_reference(L, seed):
    rng = np.random.default_rng(seed)
    b = np.zeros(L.n)
    nnz = int(rng.integers(1, max(2, L.n // 2)))
    b[rng.choice(L.n, size=nnz, replace=False)] = rng.uniform(0.5, 2.0, size=nnz)
    compiled = Sympiler().compile_triangular_solve(L, rhs_pattern=np.nonzero(b)[0])
    np.testing.assert_allclose(compiled.solve(L, b), reference_trisolve(L, b), atol=1e-8)


@_settings
@given(spd_matrices_strategy())
def test_generated_cholesky_matches_reference(A):
    compiled = Sympiler().compile_cholesky(A)
    L = compiled.factorize(A)
    np.testing.assert_allclose(L.to_dense(), reference_cholesky(A), atol=1e-8)


@_settings
@given(spd_matrices_strategy())
def test_inspector_reach_consistency_with_solution_pattern(A):
    L = CSCMatrix.from_dense(reference_cholesky(A))
    b = np.zeros(L.n)
    b[0] = 1.0
    result = TriangularSolveInspector().inspect(L, rhs_pattern=[0])
    x = reference_trisolve(L, b)
    nonzeros = set(np.nonzero(np.abs(x) > 1e-14)[0].tolist())
    assert nonzeros <= set(int(v) for v in result.reach)
