"""End-to-end tests of the Sympiler driver API (Python backend)."""

import numpy as np
import pytest

from repro.baselines.scipy_reference import reference_cholesky, reference_trisolve
from repro.compiler.cache import ArtifactCache
from repro.compiler.options import SympilerOptions
from repro.compiler.sympiler import PatternMismatchError, Sympiler
from repro.kernels.ldlt import ldlt_left_looking
from repro.sparse.generators import laplacian_2d, saddle_point_indefinite, sparse_rhs
from repro.sparse.permutation import Permutation


class TestCompileTriangularSolve:
    def test_solve_matches_reference(self, lower_factors):
        sym = Sympiler()
        for L in lower_factors.values():
            b = sparse_rhs(L.n, density=0.04, seed=31)
            compiled = sym.compile_triangular_solve(L, rhs_pattern=np.nonzero(b)[0])
            np.testing.assert_allclose(
                compiled.solve(L, b), reference_trisolve(L, b), atol=1e-9
            )

    def test_dense_rhs_compilation(self, lower_factors, rng):
        L = lower_factors["fem"]
        compiled = Sympiler().compile_triangular_solve(L)
        b = rng.normal(size=L.n)
        np.testing.assert_allclose(compiled.solve(L, b), reference_trisolve(L, b), atol=1e-9)
        assert compiled.reach_size == L.n

    def test_reuse_across_value_changes(self, lower_factors):
        L = lower_factors["banded"]
        b = sparse_rhs(L.n, nnz=3, seed=5)
        compiled = Sympiler().compile_triangular_solve(L, rhs_pattern=np.nonzero(b)[0])
        L2 = L.copy()
        L2.data *= 2.0
        np.testing.assert_allclose(
            compiled.solve(L2, b), reference_trisolve(L2, b), atol=1e-9
        )

    def test_artifact_metadata(self, lower_factors):
        L = lower_factors["block"]
        b = sparse_rhs(L.n, nnz=2, seed=6)
        compiled = Sympiler().compile_triangular_solve(L, rhs_pattern=np.nonzero(b)[0])
        assert "vi-prune" in compiled.applied_transformations
        assert compiled.timings.total >= 0.0
        assert compiled.symbolic_seconds == pytest.approx(compiled.timings.total)
        assert isinstance(compiled.source, str) and compiled.source
        assert compiled.constants
        assert "vs-block" in compiled.decisions

    def test_verify_pattern_detects_mismatch(self, lower_factors):
        L = lower_factors["fem"]
        other = lower_factors["banded"]
        b = sparse_rhs(L.n, nnz=2, seed=7)
        compiled = Sympiler().compile_triangular_solve(L, rhs_pattern=np.nonzero(b)[0])
        compiled.verify_pattern(L)
        with pytest.raises(PatternMismatchError):
            compiled.verify_pattern(other)

    def test_solve_with_check_pattern(self, lower_factors):
        L = lower_factors["fem"]
        b = sparse_rhs(L.n, nnz=2, seed=8)
        compiled = Sympiler().compile_triangular_solve(L, rhs_pattern=np.nonzero(b)[0])
        np.testing.assert_allclose(
            compiled.solve(L, b, check_pattern=True), reference_trisolve(L, b), atol=1e-9
        )


class TestCompileCholesky:
    def test_factorize_matches_reference(self, spd_matrix):
        compiled = Sympiler().compile_cholesky(spd_matrix)
        L = compiled.factorize(spd_matrix)
        np.testing.assert_allclose(L.to_dense(), reference_cholesky(spd_matrix), atol=1e-9)

    def test_factor_uses_predicted_pattern(self, spd_matrices):
        A = spd_matrices["fem"]
        compiled = Sympiler().compile_cholesky(A)
        L = compiled.factorize(A)
        np.testing.assert_array_equal(L.indptr, compiled.inspection.l_indptr)
        assert compiled.factor_nnz == L.nnz
        assert compiled.l_pattern.pattern_equal(L)

    def test_refactorization_with_new_values(self, spd_matrices):
        A = spd_matrices["laplacian_2d"]
        compiled = Sympiler().compile_cholesky(A)
        L1 = compiled.factorize(A)
        L2 = compiled.factorize(A.scale(9.0))
        np.testing.assert_allclose(L2.to_dense(), 3.0 * L1.to_dense(), atol=1e-9)

    def test_vi_prune_is_forced_for_cholesky(self, spd_matrices):
        A = spd_matrices["circuit"]
        compiled = Sympiler().compile_cholesky(A, options=SympilerOptions.baseline())
        assert compiled.decisions.get("vi-prune-forced") is True
        L = compiled.factorize(A)
        np.testing.assert_allclose(L.to_dense(), reference_cholesky(A), atol=1e-9)

    def test_verify_pattern_detects_mismatch(self, spd_matrices):
        compiled = Sympiler().compile_cholesky(spd_matrices["fem"])
        with pytest.raises(PatternMismatchError):
            compiled.verify_pattern(spd_matrices["banded"])
        compiled.verify_pattern(spd_matrices["fem"])

    def test_transformation_reporting(self, spd_matrices):
        A = spd_matrices["block"]
        full = Sympiler().compile_cholesky(A, options=SympilerOptions())
        assert "vs-block" in full.applied_transformations
        simplicial = Sympiler().compile_cholesky(A, options=SympilerOptions.vi_prune_only())
        assert "vs-block" not in simplicial.applied_transformations

    def test_default_options_can_be_set_on_the_compiler(self, spd_matrices):
        sym = Sympiler(SympilerOptions(enable_low_level=False))
        compiled = sym.compile_cholesky(spd_matrices["fem"])
        assert compiled.options.enable_low_level is False


class TestCompileLDLT:
    def test_wrapper_matches_reference(self, spd_matrices):
        A = spd_matrices["fem"]
        compiled = Sympiler(cache=ArtifactCache()).compile_ldlt(A)
        fac = compiled.factorize(A)
        ref = ldlt_left_looking(A)
        np.testing.assert_allclose(fac.L.to_dense(), ref.L.to_dense(), atol=1e-9)
        np.testing.assert_allclose(fac.d, ref.d, atol=1e-9)

    def test_indefinite_input_is_accepted(self):
        A = saddle_point_indefinite(20, 8, seed=1)
        fac = Sympiler(cache=ArtifactCache()).compile_ldlt(A).factorize(A)
        np.testing.assert_allclose(fac.reconstruct_dense(), A.to_dense(), atol=1e-9)
        assert fac.inertia == (20, 8, 0)

    def test_artifact_metadata(self, spd_matrices):
        compiled = Sympiler(cache=ArtifactCache()).compile_ldlt(spd_matrices["block"])
        assert "vi-prune" in compiled.applied_transformations
        assert compiled.timings.total >= 0.0
        assert isinstance(compiled.source, str) and compiled.source
        assert compiled.factor_nnz == int(compiled.inspection.l_indptr[-1])


class TestArtifactCacheIntegration:
    """Acceptance: a repeat compile is a cache hit, not a recompile."""

    def test_identical_compile_reuses_artifact_and_timings(self, spd_matrices):
        sym = Sympiler(cache=ArtifactCache())
        A = spd_matrices["fem"]
        first = sym.compile_cholesky(A)
        assert (sym.cache_stats.hits, sym.cache_stats.misses) == (0, 1)
        second = sym.compile_cholesky(A)
        assert second is first
        assert second.timings is first.timings  # no timings re-incurred
        assert (sym.cache_stats.hits, sym.cache_stats.misses) == (1, 1)

    def test_every_kernel_is_cached(self, spd_matrices, lower_factors):
        sym = Sympiler(cache=ArtifactCache())
        A, L = spd_matrices["fem"], lower_factors["fem"]
        artifacts = [
            sym.compile_cholesky(A),
            sym.compile_ldlt(A),
            sym.compile_triangular_solve(L),
        ]
        again = [
            sym.compile_cholesky(A),
            sym.compile_ldlt(A),
            sym.compile_triangular_solve(L),
        ]
        for a, b in zip(artifacts, again):
            assert a is b
        assert sym.cache_stats.hits == 3 and sym.cache_stats.misses == 3

    def test_option_change_recompiles(self, spd_matrices):
        sym = Sympiler(cache=ArtifactCache())
        A = spd_matrices["fem"]
        full = sym.compile_cholesky(A, options=SympilerOptions())
        ablated = sym.compile_cholesky(A, options=SympilerOptions(enable_low_level=False))
        assert ablated is not full
        assert sym.cache_stats.misses == 2


class TestOrderingIntegration:
    def test_compile_on_permuted_matrix(self):
        from repro.sparse.ordering import minimum_degree_ordering

        A = laplacian_2d(9)
        perm = minimum_degree_ordering(A)
        B = perm.symmetric_permute(A)
        compiled = Sympiler().compile_cholesky(B)
        L = compiled.factorize(B)
        np.testing.assert_allclose(L.to_dense(), reference_cholesky(B), atol=1e-9)
        # Fewer nonzeros than the natural-ordering factor on this mesh.
        natural = Sympiler().compile_cholesky(A)
        assert compiled.factor_nnz <= natural.factor_nnz

    def test_reverse_permutation_backward_solve(self, lower_factors, rng):
        # Solving L^T z = y through the reversed transposed factor, as the
        # high-level solver does.
        L = lower_factors["fem"]
        n = L.n
        reverse = Permutation(np.arange(n - 1, -1, -1, dtype=np.int64))
        Lt_rev = reverse.symmetric_permute(L.transpose())
        assert Lt_rev.is_lower_triangular()
        y = rng.normal(size=n)
        compiled = Sympiler().compile_triangular_solve(Lt_rev)
        z_rev = compiled.solve(Lt_rev, y[::-1].copy())
        z = z_rev[::-1]
        np.testing.assert_allclose(L.transpose().to_dense() @ z, y, atol=1e-8)
