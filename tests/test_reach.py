"""Tests for reach-set computation and the dependence graph."""

import numpy as np
import pytest

from repro.baselines.scipy_reference import reference_trisolve
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import sparse_rhs
from repro.symbolic.dependency_graph import DependencyGraph
from repro.symbolic.reach import reach_set, reach_set_sorted


def _brute_force_reach(L, sources):
    """Transitive closure of the column dependence relation."""
    n = L.n
    adjacency = [set(int(i) for i in L.col_rows(j) if i > j) for j in range(n)]
    visited = set()
    stack = list(int(s) for s in sources)
    while stack:
        v = stack.pop()
        if v in visited:
            continue
        visited.add(v)
        stack.extend(adjacency[v] - visited)
    return visited


@pytest.fixture(params=["laplacian_2d", "fem", "block", "circuit", "arrow"])
def factor(request, lower_factors):
    return lower_factors[request.param]


def test_reach_matches_brute_force(factor):
    b = sparse_rhs(factor.n, nnz=3, seed=7)
    sources = np.nonzero(b)[0]
    reach = reach_set(factor, sources)
    assert set(int(v) for v in reach) == _brute_force_reach(factor, sources)


def test_reach_contains_sources(factor):
    sources = [0, factor.n // 2]
    reach = set(int(v) for v in reach_set(factor, sources))
    assert set(sources) <= reach


def test_reach_is_topologically_ordered(factor):
    b = sparse_rhs(factor.n, nnz=4, seed=3)
    reach = reach_set(factor, np.nonzero(b)[0])
    graph = DependencyGraph.from_lower_triangular(factor)
    assert graph.is_valid_topological_order(reach.tolist())


def test_reach_sorted_is_same_set(factor):
    b = sparse_rhs(factor.n, nnz=5, seed=9)
    sources = np.nonzero(b)[0]
    assert set(reach_set(factor, sources).tolist()) == set(
        reach_set_sorted(factor, sources).tolist()
    )
    assert np.all(np.diff(reach_set_sorted(factor, sources)) > 0)


def test_reach_predicts_solution_nonzeros(factor):
    # Gilbert & Peierls: the nonzero pattern of x is Reach_L(beta).
    b = sparse_rhs(factor.n, nnz=2, seed=11)
    x = reference_trisolve(factor, b)
    nonzeros = set(np.nonzero(np.abs(x) > 1e-14)[0].tolist())
    reach = set(int(v) for v in reach_set(factor, np.nonzero(b)[0]))
    assert nonzeros <= reach


def test_reach_empty_sources(factor):
    assert reach_set(factor, []).size == 0


def test_reach_dense_rhs_covers_dependent_columns(factor):
    reach = reach_set(factor, np.arange(factor.n))
    assert sorted(reach.tolist()) == list(range(factor.n))


def test_reach_rejects_out_of_range_sources(factor):
    with pytest.raises(IndexError):
        reach_set(factor, [factor.n + 1])


def test_reach_requires_lower_triangular():
    A = CSCMatrix.from_dense(np.array([[1.0, 2.0], [0.0, 1.0]]))
    with pytest.raises(ValueError):
        reach_set(A, [0])


def test_reach_long_chain_no_recursion_limit():
    # A bidiagonal matrix creates a dependency chain of length n; the
    # iterative DFS must handle it without hitting Python's recursion limit.
    n = 5000
    indptr = np.zeros(n + 1, dtype=np.int64)
    indices = []
    data = []
    for j in range(n):
        rows = [j] if j == n - 1 else [j, j + 1]
        indices.extend(rows)
        data.extend([1.0] * len(rows))
        indptr[j + 1] = indptr[j] + len(rows)
    L = CSCMatrix(n, n, indptr, np.array(indices), np.array(data))
    reach = reach_set(L, [0])
    assert reach.size == n
    assert reach[0] == 0 and reach[-1] == n - 1


def test_dependency_graph_structure(factor):
    graph = DependencyGraph.from_lower_triangular(factor)
    assert graph.n == factor.n
    # Out-neighbours of column j are exactly its below-diagonal row indices.
    for j in range(factor.n):
        rows = factor.col_rows(j)
        np.testing.assert_array_equal(graph.out_neighbors(j), rows[rows > j])
        assert graph.out_degree(j) == int((rows > j).sum())


def test_dependency_graph_reachable_from(factor):
    graph = DependencyGraph.from_lower_triangular(factor)
    reach = graph.reachable_from([0])
    assert set(reach.tolist()) == _brute_force_reach(factor, [0])


def test_dependency_graph_rejects_upper_triangular():
    U = CSCMatrix.from_dense(np.array([[1.0, 2.0], [0.0, 1.0]]))
    with pytest.raises(ValueError):
        DependencyGraph.from_lower_triangular(U)


def test_dependency_graph_invalid_order_detected(factor):
    graph = DependencyGraph.from_lower_triangular(factor)
    # Find a column with at least one dependent and place it after it.
    for j in range(factor.n):
        neighbours = graph.out_neighbors(j)
        if neighbours.size:
            bad = [int(neighbours[0]), j]
            assert not graph.is_valid_topological_order(bad)
            break
    else:  # pragma: no cover - every factor here has off-diagonal entries
        pytest.skip("factor has no off-diagonal entries")
