"""Tests for the CSR container."""

import numpy as np
import pytest

from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix


@pytest.fixture()
def dense():
    return np.array(
        [
            [2.0, 0.0, 1.0],
            [0.0, 0.0, 3.0],
            [4.0, 5.0, 0.0],
        ]
    )


def test_from_csc_roundtrip(dense):
    A = CSCMatrix.from_dense(dense)
    R = CSRMatrix.from_csc(A)
    np.testing.assert_allclose(R.to_dense(), dense)
    np.testing.assert_allclose(R.to_csc().to_dense(), dense)


def test_row_access(dense):
    R = CSRMatrix.from_csc(CSCMatrix.from_dense(dense))
    np.testing.assert_array_equal(R.row_cols(2), [0, 1])
    np.testing.assert_allclose(R.row_values(2), [4.0, 5.0])
    with pytest.raises(IndexError):
        R.row_slice(5)


def test_iter_rows(dense):
    R = CSRMatrix.from_csc(CSCMatrix.from_dense(dense))
    rows = list(R.iter_rows())
    assert len(rows) == 3
    i, cols, vals = rows[1]
    assert i == 1
    np.testing.assert_array_equal(cols, [2])


def test_matvec(dense, rng):
    R = CSRMatrix.from_csc(CSCMatrix.from_dense(dense))
    x = rng.normal(size=3)
    np.testing.assert_allclose(R.matvec(x), dense @ x)
    with pytest.raises(ValueError):
        R.matvec(np.ones(4))


def test_shape_and_nnz(dense):
    R = CSRMatrix.from_csc(CSCMatrix.from_dense(dense))
    assert R.shape == (3, 3)
    assert R.nnz == 5


def test_validation_rejects_bad_structure():
    with pytest.raises(ValueError):
        CSRMatrix(2, 2, [0, 1], [0], [1.0])
    with pytest.raises(ValueError):
        CSRMatrix(2, 2, [0, 2, 2], [1, 0], [1.0, 1.0])
    with pytest.raises(ValueError):
        CSRMatrix(2, 2, [0, 1, 2], [0, 9], [1.0, 1.0])


def test_rectangular_csr():
    dense = np.array([[1.0, 0.0, 2.0, 0.0], [0.0, 3.0, 0.0, 4.0]])
    R = CSRMatrix.from_csc(CSCMatrix.from_dense(dense))
    assert R.shape == (2, 4)
    np.testing.assert_allclose(R.to_dense(), dense)
    np.testing.assert_allclose(R.to_csc().to_dense(), dense)
