"""Tests for structural helpers in repro.sparse.utils."""

import numpy as np
import pytest

from repro.sparse.csc import CSCMatrix
from repro.sparse.utils import (
    column_counts,
    dense_lower_from_csc,
    is_numerically_symmetric,
    is_symmetric_pattern,
    lower_triangle,
    pattern_of,
    residual_norm,
    symmetrize_pattern,
    upper_triangle,
)


@pytest.fixture()
def sym():
    dense = np.array(
        [
            [4.0, -1.0, 0.0],
            [-1.0, 5.0, 2.0],
            [0.0, 2.0, 6.0],
        ]
    )
    return CSCMatrix.from_dense(dense), dense


def test_lower_triangle(sym):
    A, dense = sym
    np.testing.assert_allclose(lower_triangle(A).to_dense(), np.tril(dense))
    np.testing.assert_allclose(lower_triangle(A, strict=True).to_dense(), np.tril(dense, -1))


def test_upper_triangle(sym):
    A, dense = sym
    np.testing.assert_allclose(upper_triangle(A).to_dense(), np.triu(dense))
    np.testing.assert_allclose(upper_triangle(A, strict=True).to_dense(), np.triu(dense, 1))


def test_triangle_of_empty_matrix():
    A = CSCMatrix.empty(3, 3)
    assert lower_triangle(A).nnz == 0
    assert upper_triangle(A).nnz == 0


def test_symmetrize_pattern_from_lower(sym):
    A, dense = sym
    L = lower_triangle(A)
    S = symmetrize_pattern(L)
    assert is_symmetric_pattern(S)
    np.testing.assert_allclose(S.to_dense(), dense)


def test_is_symmetric_pattern(sym):
    A, _ = sym
    assert is_symmetric_pattern(A)
    assert not is_symmetric_pattern(lower_triangle(A, strict=True))
    assert not is_symmetric_pattern(CSCMatrix.from_dense(np.ones((2, 3))))


def test_is_numerically_symmetric(sym):
    A, dense = sym
    assert is_numerically_symmetric(A)
    skew = CSCMatrix.from_dense(np.array([[0.0, 1.0], [-1.0, 0.0]]))
    assert not is_numerically_symmetric(skew)


def test_residual_norm(sym):
    A, dense = sym
    x = np.array([1.0, 2.0, 3.0])
    b = dense @ x
    assert residual_norm(A, x, b) < 1e-14
    assert residual_norm(A, x, b + 1.0) > 0.0


def test_dense_lower_from_csc(sym):
    A, dense = sym
    np.testing.assert_allclose(dense_lower_from_csc(A), np.tril(dense))


def test_pattern_of(sym):
    A, _ = sym
    P = pattern_of(A)
    assert P.pattern_equal(A)
    assert np.all(P.data == 1.0)


def test_column_counts(sym):
    A, dense = sym
    np.testing.assert_array_equal(column_counts(A), (dense != 0).sum(axis=0))
