"""Tests for fill-in prediction (ereach, factor patterns, counts)."""

import numpy as np
import pytest

from repro.baselines.scipy_reference import reference_cholesky
from repro.sparse.csc import CSCMatrix
from repro.sparse.utils import lower_triangle
from repro.symbolic.colcount import (
    average_column_count,
    column_counts_of_factor,
    row_counts_of_factor,
)
from repro.symbolic.etree import elimination_tree
from repro.symbolic.fill_pattern import (
    cholesky_pattern,
    ereach,
    fill_in_count,
    row_patterns_of_factor,
    symbolic_factor_nnz,
)


def _numeric_pattern(A):
    """Nonzero pattern of the dense numeric factor (no cancellation expected)."""
    L = reference_cholesky(A)
    return np.abs(L) > 1e-12


def test_ereach_matches_numeric_row_pattern(spd_matrix):
    parent = elimination_tree(spd_matrix)
    pattern = _numeric_pattern(spd_matrix)
    for k in range(0, spd_matrix.n, max(1, spd_matrix.n // 10)):
        expected = set(np.nonzero(pattern[k, :k])[0].tolist())
        got = set(int(j) for j in ereach(spd_matrix, k, parent))
        assert got == expected


def test_ereach_is_sorted_and_below_k(spd_matrix):
    parent = elimination_tree(spd_matrix)
    for k in (0, spd_matrix.n // 2, spd_matrix.n - 1):
        r = ereach(spd_matrix, k, parent)
        assert np.all(np.diff(r) > 0) if r.size > 1 else True
        assert np.all(r < k)


def test_ereach_out_of_range(spd_matrices):
    A = spd_matrices["fem"]
    parent = elimination_tree(A)
    with pytest.raises(IndexError):
        ereach(A, A.n + 3, parent)


def test_cholesky_pattern_matches_numeric_factor(spd_matrix):
    indptr, indices = cholesky_pattern(spd_matrix)
    pattern = _numeric_pattern(spd_matrix)
    predicted = np.zeros_like(pattern)
    for j in range(spd_matrix.n):
        predicted[indices[indptr[j] : indptr[j + 1]], j] = True
    np.testing.assert_array_equal(predicted, pattern)


def test_cholesky_pattern_is_sorted_and_has_diagonal(spd_matrix):
    indptr, indices = cholesky_pattern(spd_matrix)
    for j in range(spd_matrix.n):
        rows = indices[indptr[j] : indptr[j + 1]]
        assert rows[0] == j
        assert np.all(np.diff(rows) > 0)


def test_pattern_superset_of_lower_triangle(spd_matrix):
    indptr, indices = cholesky_pattern(spd_matrix)
    L_A = lower_triangle(spd_matrix)
    for j in range(spd_matrix.n):
        predicted = set(indices[indptr[j] : indptr[j + 1]].tolist())
        original = set(L_A.col_rows(j).tolist())
        assert original <= predicted


def test_row_patterns_of_factor_consistent_with_columns(spd_matrix):
    indptr, indices = cholesky_pattern(spd_matrix)
    rows = row_patterns_of_factor(spd_matrix)
    # (k, j) is in the column pattern of j (below diagonal) iff j is in the
    # row pattern of k.
    for j in range(spd_matrix.n):
        for k in indices[indptr[j] + 1 : indptr[j + 1]]:
            assert j in set(rows[int(k)].tolist())


def test_column_counts_match_pattern(spd_matrix):
    indptr, _ = cholesky_pattern(spd_matrix)
    counts = column_counts_of_factor(spd_matrix)
    np.testing.assert_array_equal(counts, np.diff(indptr))


def test_row_counts_match_pattern(spd_matrix):
    indptr, indices = cholesky_pattern(spd_matrix)
    counts = row_counts_of_factor(spd_matrix)
    expected = np.zeros(spd_matrix.n, dtype=np.int64)
    for j in range(spd_matrix.n):
        expected[indices[indptr[j] : indptr[j + 1]]] += 1
    np.testing.assert_array_equal(counts, expected)


def test_symbolic_nnz_and_fill_count(spd_matrix):
    nnz_l = symbolic_factor_nnz(spd_matrix)
    assert nnz_l == int(column_counts_of_factor(spd_matrix).sum())
    fill = fill_in_count(spd_matrix)
    assert fill == nnz_l - lower_triangle(spd_matrix).nnz
    assert fill >= 0


def test_average_column_count(spd_matrix):
    avg = average_column_count(spd_matrix)
    counts = column_counts_of_factor(spd_matrix)
    assert avg == pytest.approx(counts.mean())


def test_diagonal_matrix_has_no_fill():
    A = CSCMatrix.identity(6)
    assert fill_in_count(A) == 0
    assert symbolic_factor_nnz(A) == 6
    indptr, indices = cholesky_pattern(A)
    np.testing.assert_array_equal(indices, np.arange(6))
