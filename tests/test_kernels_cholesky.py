"""Tests for the sparse Cholesky kernel variants."""

import numpy as np
import pytest

from repro.baselines.scipy_reference import reference_cholesky
from repro.kernels.cholesky import (
    NotPositiveDefiniteError,
    cholesky_left_looking,
    cholesky_supernodal,
    cholesky_up_looking,
)
from repro.kernels.flops import cholesky_flops, gflops, triangular_solve_flops
from repro.sparse.csc import CSCMatrix
from repro.sparse.utils import lower_triangle
from repro.symbolic.inspector import CholeskyInspector


def test_left_looking_matches_reference(spd_matrix):
    L = cholesky_left_looking(spd_matrix)
    np.testing.assert_allclose(L.to_dense(), reference_cholesky(spd_matrix), atol=1e-9)


def test_supernodal_matches_reference(spd_matrix):
    L = cholesky_supernodal(spd_matrix)
    np.testing.assert_allclose(L.to_dense(), reference_cholesky(spd_matrix), atol=1e-9)


def test_up_looking_matches_reference(spd_matrix):
    L = cholesky_up_looking(spd_matrix)
    np.testing.assert_allclose(L.to_dense(), reference_cholesky(spd_matrix), atol=1e-9)


def test_variants_share_the_predicted_pattern(spd_matrices):
    A = spd_matrices["fem"]
    inspection = CholeskyInspector().inspect(A)
    l1 = cholesky_left_looking(A, inspection)
    l2 = cholesky_supernodal(A, inspection)
    assert l1.pattern_equal(l2)
    np.testing.assert_array_equal(l1.indptr, inspection.l_indptr)
    np.testing.assert_array_equal(l1.indices, inspection.l_indices)


def test_factorization_from_lower_storage(spd_matrices):
    A = spd_matrices["laplacian_2d"]
    lower = lower_triangle(A)
    L = cholesky_left_looking(lower)
    np.testing.assert_allclose(L.to_dense(), reference_cholesky(A), atol=1e-9)


def test_reconstruction_l_lt(spd_matrix):
    L = cholesky_supernodal(spd_matrix)
    dense_l = L.to_dense()
    np.testing.assert_allclose(dense_l @ dense_l.T, _full_dense(spd_matrix), atol=1e-8)


def _full_dense(A):
    dense = A.to_dense()
    if A.is_lower_triangular() and A.n > 1:
        dense = dense + np.tril(dense, -1).T
    return dense


def test_indefinite_matrix_raises():
    dense = np.array([[1.0, 2.0], [2.0, 1.0]])
    A = CSCMatrix.from_dense(dense)
    for fn in (cholesky_left_looking, cholesky_supernodal, cholesky_up_looking):
        with pytest.raises(NotPositiveDefiniteError):
            fn(A)


def test_non_square_rejected():
    rect = CSCMatrix.from_dense(np.ones((2, 3)))
    for fn in (cholesky_left_looking, cholesky_supernodal, cholesky_up_looking):
        with pytest.raises(ValueError):
            fn(rect)


def test_diagonal_matrix_factorization():
    A = CSCMatrix.from_dense(np.diag([4.0, 9.0, 16.0]))
    L = cholesky_left_looking(A)
    np.testing.assert_allclose(L.to_dense(), np.diag([2.0, 3.0, 4.0]))


def test_small_block_limit_variations(spd_matrices):
    A = spd_matrices["block"]
    inspection = CholeskyInspector().inspect(A)
    l_small = cholesky_supernodal(A, inspection, small_block_limit=3)
    l_blas = cholesky_supernodal(A, inspection, small_block_limit=0)
    np.testing.assert_allclose(l_small.to_dense(), l_blas.to_dense(), atol=1e-10)


# --------------------------------------------------------------------------- #
# FLOP counting
# --------------------------------------------------------------------------- #
def test_triangular_solve_flops_identity():
    L = CSCMatrix.identity(5)
    assert triangular_solve_flops(L) == 5  # one division per column
    assert triangular_solve_flops(L, [0, 2]) == 2


def test_triangular_solve_flops_counts_offdiagonals():
    dense = np.array([[1.0, 0.0], [2.0, 3.0]])
    L = CSCMatrix.from_dense(dense)
    # Column 0: 1 div + 2 flops for one off-diagonal entry; column 1: 1 div.
    assert triangular_solve_flops(L) == 4


def test_cholesky_flops_dense_order():
    # For a dense factor the count grows like n^3 / 3 to leading order.
    counts = np.arange(30, 0, -1)
    flops = cholesky_flops(counts)
    n = 30
    assert flops == pytest.approx(n**3 / 3.0, rel=0.2)


def test_cholesky_flops_accepts_matrix(spd_matrices):
    A = spd_matrices["fem"]
    L = cholesky_left_looking(A)
    counts = np.diff(L.indptr)
    assert cholesky_flops(L) == cholesky_flops(counts)


def test_gflops_helper():
    assert gflops(2_000_000_000, 1.0) == pytest.approx(2.0)
    assert gflops(1, 0.0) == float("inf")
