"""Tests for the level-set schedule layer (repro.runtime.levels).

Covers the satellite requirement: property-style tests that every computed
level set is an antichain of the kernel's dependency graph (no intra-level
edges) and that the concatenated levels pass
``DependencyGraph.is_valid_topological_order`` — for cholesky, ldlt and lu
patterns — plus the compile-time plumbing (schedules attached to inspection
results and cached with the artifact).
"""

import numpy as np
import pytest

from repro.compiler.cache import ArtifactCache
from repro.compiler.sympiler import Sympiler
from repro.runtime.levels import (
    ExecutionSchedule,
    dependency_graph_from_column_deps,
    level_sets_from_column_deps,
    level_sets_from_dependency_graph,
    level_sets_from_parent,
    schedule_from_level_array,
)
from repro.sparse.generators import (
    circuit_like_spd,
    fem_stencil_2d,
    laplacian_2d,
    saddle_point_indefinite,
    sparse_rhs,
    unsymmetric_diag_dominant,
)
from repro.symbolic.dependency_graph import DependencyGraph
from repro.symbolic.inspector import (
    CholeskyInspector,
    LDLTInspector,
    LUInspector,
    TriangularSolveInspector,
)


def _symmetric_cases():
    return {
        "laplacian": laplacian_2d(9, shift=0.1),
        "fem": fem_stencil_2d(7, shift=0.25),
        "circuit": circuit_like_spd(60, seed=9),
    }


def _assert_wavefront_partition(schedule: ExecutionSchedule, dg: DependencyGraph):
    """The two defining properties, checked explicitly (not via the helper)."""
    level = schedule.level_of()
    # Antichain: no dependency edge connects two members of one level.
    for j in schedule.as_order():
        for i in dg.out_neighbors(int(j)):
            i = int(i)
            if level[i] >= 0:
                assert level[i] != level[int(j)], (
                    f"edge {int(j)} -> {i} inside level {level[i]}"
                )
    # Concatenated levels are a valid topological order.
    assert dg.is_valid_topological_order(schedule.as_order())
    # And the helper agrees.
    assert schedule.validate_against(dg)


class TestFactorizationSchedules:
    @pytest.mark.parametrize("name", sorted(_symmetric_cases()))
    def test_cholesky_schedule_is_wavefront_partition(self, name):
        A = _symmetric_cases()[name]
        result = CholeskyInspector().inspect(A)
        dg = DependencyGraph.from_lower_triangular(result.l_pattern_matrix())
        _assert_wavefront_partition(result.schedule, dg)
        assert result.schedule.n_scheduled == A.n

    def test_ldlt_schedule_is_wavefront_partition(self):
        K = saddle_point_indefinite(30, 12, seed=3)
        result = LDLTInspector().inspect(K)
        dg = DependencyGraph.from_lower_triangular(result.l_pattern_matrix())
        _assert_wavefront_partition(result.schedule, dg)

    def test_lu_schedule_is_wavefront_partition(self):
        J = unsymmetric_diag_dominant(70, seed=11)
        result = LUInspector().inspect(J)
        deps = [
            result.u_indices[result.u_indptr[j] : result.u_indptr[j + 1] - 1]
            for j in range(result.n)
        ]
        dg = dependency_graph_from_column_deps(result.n, deps)
        _assert_wavefront_partition(result.schedule, dg)

    def test_triangular_schedule_respects_reach(self):
        A = laplacian_2d(8, shift=0.1)
        insp = CholeskyInspector().inspect(A)
        L = insp.l_pattern_matrix()
        rhs = sparse_rhs(A.n, nnz=2, seed=7)
        result = TriangularSolveInspector().inspect(L, rhs_pattern=np.nonzero(rhs)[0])
        schedule = result.schedule
        # Exactly the reach-set is scheduled, and the partition is legal.
        assert np.array_equal(np.sort(schedule.as_order()), result.reach_sorted)
        _assert_wavefront_partition(schedule, DependencyGraph.from_lower_triangular(L))

    def test_exact_schedule_no_deeper_than_etree(self):
        """Exact row-pattern levels are at most as deep as etree levels."""
        A = fem_stencil_2d(8, shift=0.25)
        result = CholeskyInspector().inspect(A)
        etree_schedule = level_sets_from_parent(result.parent)
        assert result.schedule.n_levels <= etree_schedule.n_levels
        dg = DependencyGraph.from_lower_triangular(result.l_pattern_matrix())
        _assert_wavefront_partition(etree_schedule, dg)


class TestScheduleObject:
    def test_widths_and_order(self):
        level = np.array([0, 0, 1, 2, 1, 0])
        s = schedule_from_level_array(level, graph="test")
        assert s.n_levels == 3
        assert list(s.widths) == [3, 2, 1]
        assert s.max_width == 3
        assert s.average_width == pytest.approx(2.0)
        assert np.array_equal(s.level(0), [0, 1, 5])
        assert np.array_equal(s.as_order(), [0, 1, 5, 2, 4, 3])
        lo = s.level_of()
        assert lo[3] == 2 and lo[5] == 0

    def test_active_restriction_squeezes_empty_levels(self):
        level = np.array([0, 1, 2, 3])
        s = schedule_from_level_array(level, active=np.array([0, 3]))
        assert s.n_scheduled == 2
        assert s.n_levels == 2  # empty middle levels squeezed
        assert s.level_of()[1] == -1

    def test_level_out_of_range(self):
        s = schedule_from_level_array(np.zeros(3, dtype=np.int64))
        with pytest.raises(IndexError):
            s.level(1)

    def test_dependency_graph_levels_match_column_deps(self):
        A = laplacian_2d(7, shift=0.1)
        insp = CholeskyInspector().inspect(A)
        L = insp.l_pattern_matrix()
        dg = DependencyGraph.from_lower_triangular(L)
        via_graph = level_sets_from_dependency_graph(dg)
        via_deps = level_sets_from_column_deps(insp.row_patterns)
        # Both compute longest-path levels of the same DAG.
        assert np.array_equal(via_graph.level_of(), via_deps.level_of())

    def test_validate_against_rejects_bad_partition(self):
        # Chain 0 -> 1: putting both in level 0 is not an antichain.
        dg = DependencyGraph(2, np.array([0, 1, 1]), np.array([1]))
        bogus = schedule_from_level_array(np.array([0, 0]))
        assert not bogus.validate_against(dg)


class TestCompileTimePlumbing:
    def test_artifact_exposes_cached_schedule(self):
        sym = Sympiler(cache=ArtifactCache())
        A = laplacian_2d(6, shift=0.1)
        artifact = sym.compile("cholesky", A)
        assert isinstance(artifact.schedule, ExecutionSchedule)
        # A cache hit returns the very same schedule object — the schedule is
        # compile-time state keyed by the pattern fingerprint.
        again = sym.compile("cholesky", A)
        assert again.schedule is artifact.schedule


def test_symbolic_inspector_imports_standalone():
    """The symbolic layer's import of runtime.levels must not drag the engine in.

    repro/runtime/__init__ re-exports the engine/facade *lazily*; if someone
    makes those imports eager, `import repro.symbolic.inspector` in a fresh
    interpreter would recurse (inspector -> runtime -> engine -> compiler
    artifacts -> inspector) and die at import time.  Guard the discipline.
    """
    import subprocess
    import sys

    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            # Succeeds only while runtime/__init__ stays lazy: an eager
            # engine import would hit repro.compiler.artifacts while it is
            # still initializing (mid-way through the symbolic layer's own
            # import) and raise at import time.
            "import repro.symbolic.inspector",
        ],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
