"""Tests for the inspector-guided and low-level transformations."""

import numpy as np
import pytest

from repro.compiler.ast import (
    PeeledColumnSolve,
    PrunedColumnSolveLoop,
    SimplicialCholeskyLoop,
    SupernodalCholeskyLoop,
    SupernodeTriangularBlock,
    walk,
)
from repro.compiler.lowering import lower_cholesky, lower_triangular_solve
from repro.compiler.options import SympilerOptions
from repro.compiler.transforms.base import CompilationContext, TransformPipeline
from repro.compiler.transforms.descriptors import (
    a_lower_positions,
    simplicial_descriptors,
    supernodal_descriptors,
)
from repro.compiler.transforms.lowlevel import (
    LoopDistributeTransform,
    PeelTransform,
    SmallKernelTransform,
    UnrollTransform,
)
from repro.compiler.transforms.pipeline import build_pipeline
from repro.compiler.transforms.vi_prune import VIPruneTransform
from repro.compiler.transforms.vs_block import VSBlockTransform, vs_block_participates
from repro.sparse.generators import block_tridiagonal_spd, sparse_rhs
from repro.symbolic.inspector import CholeskyInspector, TriangularSolveInspector


def _tri_context(L, options=None, rhs_nnz=3):
    b = sparse_rhs(L.n, nnz=rhs_nnz, seed=4)
    inspection = TriangularSolveInspector().inspect(L, rhs_pattern=np.nonzero(b)[0])
    return CompilationContext(
        method="triangular-solve",
        matrix=L,
        inspection=inspection,
        options=options or SympilerOptions(),
        rhs_pattern=inspection.rhs_pattern,
    )


def _chol_context(A, options=None):
    inspection = CholeskyInspector().inspect(A)
    return CompilationContext(
        method="cholesky",
        matrix=A,
        inspection=inspection,
        options=options or SympilerOptions(),
    )


def _nodes(kernel, node_type):
    return [n for n in walk(kernel.body) if isinstance(n, node_type)]


# --------------------------------------------------------------------------- #
# Descriptors
# --------------------------------------------------------------------------- #
def test_a_lower_positions(spd_matrices):
    A = spd_matrices["fem"]
    diag_pos, col_end = a_lower_positions(A)
    for j in range(A.n):
        rows = A.indices[diag_pos[j] : col_end[j]]
        assert rows[0] == j
        assert np.all(rows >= j)


def test_simplicial_descriptors_point_at_ljk(spd_matrices):
    A = spd_matrices["laplacian_2d"]
    inspection = CholeskyInspector().inspect(A)
    desc = simplicial_descriptors(A, inspection)
    assert desc.prune_ptr[-1] == sum(r.size for r in inspection.row_patterns)
    cursor = 0
    for j in range(A.n):
        for k in inspection.row_patterns[j]:
            pos = desc.update_pos[cursor]
            assert inspection.l_indices[pos] == j
            assert desc.update_end[cursor] == inspection.l_indptr[int(k) + 1]
            cursor += 1


def test_supernodal_descriptors_cover_all_updates(spd_matrices):
    A = spd_matrices["block"]
    inspection = CholeskyInspector().inspect(A)
    desc = supernodal_descriptors(A, inspection)
    partition = inspection.supernodes
    assert desc.sup_start.size == partition.n_supernodes
    for s, c0, c1 in partition.iter_supernodes():
        descendants = set()
        for c in range(c0, c1):
            descendants |= {int(k) for k in inspection.row_patterns[c] if int(k) < c0}
        assert desc.desc_ptr[s + 1] - desc.desc_ptr[s] == len(descendants)
        for t in range(desc.desc_ptr[s], desc.desc_ptr[s + 1]):
            assert desc.desc_pos[t] <= desc.desc_mult_end[t] <= desc.desc_end[t]


# --------------------------------------------------------------------------- #
# VI-Prune
# --------------------------------------------------------------------------- #
def test_vi_prune_triangular_replaces_column_loop(lower_factors):
    L = lower_factors["fem"]
    context = _tri_context(L)
    kernel = VIPruneTransform().apply(lower_triangular_solve(), context)
    pruned = _nodes(kernel, PrunedColumnSolveLoop)
    assert len(pruned) == 1
    np.testing.assert_array_equal(pruned[0].columns, context.inspection.reach)
    assert "prune_set" in kernel.constants
    assert context.applied == ["vi-prune"]
    assert kernel.meta["vi_prune"] is True


def test_vi_prune_cholesky_produces_simplicial_loop(spd_matrices):
    A = spd_matrices["laplacian_2d"]
    context = _chol_context(A)
    kernel = VIPruneTransform().apply(lower_cholesky(), context)
    loops = _nodes(kernel, SimplicialCholeskyLoop)
    assert len(loops) == 1
    assert loops[0].factor_nnz == context.inspection.factor_nnz
    for cname in ("l_indptr", "l_indices", "prune_ptr", "update_pos", "update_end"):
        assert cname in kernel.constants


def test_vi_prune_is_idempotent_on_cholesky(spd_matrices):
    A = spd_matrices["fem"]
    context = _chol_context(A)
    kernel = VIPruneTransform().apply(lower_cholesky(), context)
    kernel = VIPruneTransform().apply(kernel, context)
    assert len(_nodes(kernel, SimplicialCholeskyLoop)) == 1


def test_vi_prune_rejects_unknown_method(lower_factors):
    context = _tri_context(lower_factors["fem"])
    context.method = "qr"
    with pytest.raises(ValueError):
        VIPruneTransform().apply(lower_triangular_solve(), context)


# --------------------------------------------------------------------------- #
# VS-Block
# --------------------------------------------------------------------------- #
def test_vs_block_participation_heuristic():
    from repro.symbolic.supernodes import supernodes_from_boundaries

    wide = supernodes_from_boundaries([0, 4, 8], 12)
    yes, details = vs_block_participates(wide, min_supernode_width=2, min_avg_width=1.2)
    assert yes and details["participates"]
    singles = supernodes_from_boundaries(list(range(12)), 12)
    no, details = vs_block_participates(singles, min_supernode_width=2, min_avg_width=1.2)
    assert not no and details["n_wide_supernodes"] == 0


def test_vs_block_triangular_produces_blocks():
    A = block_tridiagonal_spd(6, 6, seed=1, dense_coupling=True)
    inspection = CholeskyInspector().inspect(A)
    from repro.kernels.cholesky import cholesky_supernodal

    L = cholesky_supernodal(A, inspection)
    context = _tri_context(L)
    kernel = VSBlockTransform().apply(lower_triangular_solve(), context)
    blocks = _nodes(kernel, SupernodeTriangularBlock)
    assert blocks, "expected at least one supernode block"
    assert "block_set" in kernel.constants
    assert context.decisions["vs-block"]["participates"]


def test_vs_block_skips_when_supernodes_are_small(lower_factors):
    # The 2-D grid factor under this ordering has mostly width-1 supernodes.
    L = lower_factors["laplacian_2d"]
    options = SympilerOptions(vs_block_min_avg_width=10.0)
    context = _tri_context(L, options=options)
    kernel = VSBlockTransform().apply(lower_triangular_solve(), context)
    assert not _nodes(kernel, SupernodeTriangularBlock)
    assert not context.decisions["vs-block"]["participates"]
    assert context.applied == []


def test_vs_block_cholesky_produces_supernodal_loop(spd_matrices):
    A = spd_matrices["block"]
    context = _chol_context(A)
    kernel = VSBlockTransform().apply(lower_cholesky(), context)
    loops = _nodes(kernel, SupernodalCholeskyLoop)
    assert len(loops) == 1
    assert loops[0].n_supernodes == context.inspection.supernodes.n_supernodes
    # Low-level refinements are off until the low-level passes run.
    assert not loops[0].distribute_single_columns
    assert not loops[0].use_small_kernels


def test_vs_block_after_vi_prune_restricts_to_reach(lower_factors):
    L = lower_factors["block"]
    context = _tri_context(L, rhs_nnz=1)
    kernel = VIPruneTransform().apply(lower_triangular_solve(), context)
    kernel = VSBlockTransform().apply(kernel, context)
    reach = set(context.inspection.reach_sorted.tolist())
    covered = set()
    for node in walk(kernel.body):
        if isinstance(node, SupernodeTriangularBlock):
            covered |= set(range(node.c0, node.c0 + node.width))
        elif isinstance(node, PrunedColumnSolveLoop):
            covered |= set(int(c) for c in node.columns)
    assert reach <= covered


def test_vi_prune_after_vs_block_drops_unreached_blocks(lower_factors):
    L = lower_factors["block"]
    context = _tri_context(L, rhs_nnz=1)
    kernel = VSBlockTransform().apply(lower_triangular_solve(), context)
    n_blocks_before = len(_nodes(kernel, SupernodeTriangularBlock))
    kernel = VIPruneTransform().apply(kernel, context)
    blocks_after = _nodes(kernel, SupernodeTriangularBlock)
    reach = set(context.inspection.reach_sorted.tolist())
    for block in blocks_after:
        assert any(c in reach for c in range(block.c0, block.c0 + block.width))
    assert len(blocks_after) <= n_blocks_before


# --------------------------------------------------------------------------- #
# Low-level passes
# --------------------------------------------------------------------------- #
def test_peel_extracts_eligible_columns(lower_factors):
    L = lower_factors["circuit"]
    options = SympilerOptions(peel_colcount_threshold=2)
    context = _tri_context(L, options=options)
    kernel = VIPruneTransform().apply(lower_triangular_solve(), context)
    kernel = PeelTransform().apply(kernel, context)
    peeled = _nodes(kernel, PeeledColumnSolve)
    assert peeled
    colcounts = np.diff(L.indptr)
    for node in peeled:
        assert colcounts[node.column] == 1 or colcounts[node.column] > 2


def test_peel_respects_budget(lower_factors):
    L = lower_factors["circuit"]
    options = SympilerOptions(max_peeled_iterations=2)
    context = _tri_context(L, options=options)
    kernel = VIPruneTransform().apply(lower_triangular_solve(), context)
    kernel = PeelTransform().apply(kernel, context)
    assert len(_nodes(kernel, PeeledColumnSolve)) <= 2


def test_peel_preserves_column_order(lower_factors):
    L = lower_factors["circuit"]
    context = _tri_context(L)
    kernel = VIPruneTransform().apply(lower_triangular_solve(), context)
    reach_order = list(context.inspection.reach)
    kernel = PeelTransform().apply(kernel, context)
    emitted = []
    for node in walk(kernel.body):
        if isinstance(node, PeeledColumnSolve):
            emitted.append(node.column)
        elif isinstance(node, PrunedColumnSolveLoop):
            emitted.extend(int(c) for c in node.columns)
    assert emitted == [int(c) for c in reach_order]


def test_unroll_marks_small_blocks_and_peels():
    A = block_tridiagonal_spd(5, 3, seed=2, dense_coupling=True)
    inspection = CholeskyInspector().inspect(A)
    from repro.kernels.cholesky import cholesky_supernodal

    L = cholesky_supernodal(A, inspection)
    options = SympilerOptions(unroll_max_width=4)
    context = _tri_context(L, options=options)
    kernel = VSBlockTransform().apply(lower_triangular_solve(), context)
    kernel = UnrollTransform().apply(kernel, context)
    blocks = _nodes(kernel, SupernodeTriangularBlock)
    assert any(b.unroll for b in blocks if b.width <= 4)


def test_distribute_and_small_kernels_refine_supernodal_loop(spd_matrices):
    A = spd_matrices["block"]
    context = _chol_context(A)
    kernel = VSBlockTransform().apply(lower_cholesky(), context)
    kernel = LoopDistributeTransform().apply(kernel, context)
    kernel = SmallKernelTransform().apply(kernel, context)
    loop = _nodes(kernel, SupernodalCholeskyLoop)[0]
    assert loop.distribute_single_columns
    expected_small = context.inspection.average_column_count < context.options.blas_switch_avg_colcount
    assert loop.use_small_kernels == expected_small


def test_lowlevel_passes_are_noops_without_hints(spd_matrices):
    A = spd_matrices["fem"]
    context = _chol_context(A)
    kernel = lower_cholesky()
    for pass_ in (PeelTransform(), UnrollTransform(), LoopDistributeTransform(), SmallKernelTransform()):
        kernel = pass_.apply(kernel, context)
    assert context.applied == []


# --------------------------------------------------------------------------- #
# Pipeline
# --------------------------------------------------------------------------- #
def test_build_pipeline_reflects_options():
    full = build_pipeline(SympilerOptions())
    assert full.pass_names()[:2] == ["vs-block", "vi-prune"]
    assert "peel" in full.pass_names()
    no_lowlevel = build_pipeline(SympilerOptions(enable_low_level=False))
    assert no_lowlevel.pass_names() == ["vs-block", "vi-prune"]
    reordered = build_pipeline(SympilerOptions(transformation_order=("vi-prune", "vs-block")))
    assert reordered.pass_names()[:2] == ["vi-prune", "vs-block"]
    assert len(build_pipeline(SympilerOptions.baseline())) == 0


def test_pipeline_run_records_applied_transformations(lower_factors):
    L = lower_factors["block"]
    options = SympilerOptions()
    context = _tri_context(L, options=options)
    pipeline = build_pipeline(options)
    assert isinstance(pipeline, TransformPipeline)
    pipeline.run(lower_triangular_solve(), context)
    assert "vi-prune" in context.applied
