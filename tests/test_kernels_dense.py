"""Tests for the dense micro-kernels."""

import numpy as np
import pytest

from repro.kernels.dense import (
    NotPositiveDefiniteError,
    SMALL_KERNEL_LIMIT,
    dense_cholesky,
    dense_lower_solve,
    dense_solve_transposed_right,
    has_small_kernel,
    small_cholesky,
    small_lower_solve,
)


def _random_spd(rng, n):
    M = rng.normal(size=(n, n))
    return M @ M.T + n * np.eye(n)


@pytest.mark.parametrize("n", [1, 2, 3, 5, 10, 25])
def test_dense_cholesky_matches_numpy(rng, n):
    A = _random_spd(rng, n)
    L = dense_cholesky(A)
    np.testing.assert_allclose(L, np.linalg.cholesky(A), atol=1e-10)
    assert np.allclose(np.triu(L, 1), 0.0)


def test_dense_cholesky_rejects_non_square():
    with pytest.raises(ValueError):
        dense_cholesky(np.ones((2, 3)))


def test_dense_cholesky_rejects_indefinite():
    with pytest.raises(NotPositiveDefiniteError):
        dense_cholesky(np.array([[1.0, 2.0], [2.0, 1.0]]))


def test_dense_cholesky_ignores_upper_garbage(rng):
    A = _random_spd(rng, 6)
    garbled = A.copy()
    garbled[np.triu_indices(6, 1)] = 1e6  # only the lower part should be read
    np.testing.assert_allclose(dense_cholesky(garbled), np.linalg.cholesky(A), atol=1e-8)


@pytest.mark.parametrize("n", [1, 2, 4, 9])
def test_dense_lower_solve_vector(rng, n):
    L = np.linalg.cholesky(_random_spd(rng, n))
    b = rng.normal(size=n)
    np.testing.assert_allclose(L @ dense_lower_solve(L, b), b, atol=1e-10)


def test_dense_lower_solve_matrix_rhs(rng):
    L = np.linalg.cholesky(_random_spd(rng, 6))
    B = rng.normal(size=(6, 3))
    X = dense_lower_solve(L, B)
    np.testing.assert_allclose(L @ X, B, atol=1e-10)


def test_dense_lower_solve_shape_checks(rng):
    L = np.linalg.cholesky(_random_spd(rng, 4))
    with pytest.raises(ValueError):
        dense_lower_solve(L, np.ones(5))
    with pytest.raises(ValueError):
        dense_lower_solve(np.ones((2, 3)), np.ones(2))


def test_dense_solve_transposed_right(rng):
    L = np.linalg.cholesky(_random_spd(rng, 5))
    B = rng.normal(size=(7, 5))
    X = dense_solve_transposed_right(L, B)
    np.testing.assert_allclose(X @ L.T, B, atol=1e-10)


def test_dense_solve_transposed_right_vector(rng):
    L = np.linalg.cholesky(_random_spd(rng, 4))
    b = rng.normal(size=4)
    x = dense_solve_transposed_right(L, b)
    np.testing.assert_allclose(x @ L.T, b, atol=1e-10)


@pytest.mark.parametrize("n", [1, 2, 3])
def test_small_cholesky_matches_dense(rng, n):
    A = _random_spd(rng, n)
    np.testing.assert_allclose(small_cholesky(A), np.linalg.cholesky(A), atol=1e-10)


def test_small_cholesky_falls_back_for_large_blocks(rng):
    A = _random_spd(rng, SMALL_KERNEL_LIMIT + 2)
    np.testing.assert_allclose(small_cholesky(A), np.linalg.cholesky(A), atol=1e-10)


def test_small_cholesky_detects_indefinite_blocks():
    with pytest.raises(NotPositiveDefiniteError):
        small_cholesky(np.array([[-1.0]]))
    with pytest.raises(NotPositiveDefiniteError):
        small_cholesky(np.array([[1.0, 2.0], [2.0, 1.0]]))
    with pytest.raises(NotPositiveDefiniteError):
        small_cholesky(np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 2.0], [0.0, 2.0, 1.0]]))


@pytest.mark.parametrize("n", [1, 2, 3, 6])
def test_small_lower_solve(rng, n):
    L = np.linalg.cholesky(_random_spd(rng, n))
    b = rng.normal(size=n)
    np.testing.assert_allclose(L @ small_lower_solve(L, b), b, atol=1e-10)


def test_has_small_kernel_limits():
    assert has_small_kernel(1)
    assert has_small_kernel(SMALL_KERNEL_LIMIT)
    assert not has_small_kernel(SMALL_KERNEL_LIMIT + 1)
    assert not has_small_kernel(0)
