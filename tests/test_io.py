"""Tests for Matrix Market I/O."""

import numpy as np
import pytest

from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import laplacian_2d
from repro.sparse.io import read_matrix_market, write_matrix_market


def test_roundtrip_general(tmp_path, rng):
    dense = rng.normal(size=(5, 7))
    dense[np.abs(dense) < 0.8] = 0.0
    A = CSCMatrix.from_dense(dense)
    path = tmp_path / "general.mtx"
    write_matrix_market(path, A)
    B = read_matrix_market(path)
    np.testing.assert_allclose(B.to_dense(), A.to_dense())


def test_roundtrip_symmetric(tmp_path):
    A = laplacian_2d(5)
    path = tmp_path / "sym.mtx"
    write_matrix_market(path, A, symmetric=True, comment="5x5 grid Laplacian")
    B = read_matrix_market(path)
    np.testing.assert_allclose(B.to_dense(), A.to_dense())


def test_symmetric_file_is_smaller(tmp_path):
    A = laplacian_2d(6)
    p1 = tmp_path / "full.mtx"
    p2 = tmp_path / "sym.mtx"
    write_matrix_market(p1, A)
    write_matrix_market(p2, A, symmetric=True)
    assert p2.stat().st_size < p1.stat().st_size


def test_comment_written(tmp_path):
    A = CSCMatrix.identity(2)
    path = tmp_path / "c.mtx"
    write_matrix_market(path, A, comment="hello\nworld")
    text = path.read_text()
    assert "% hello" in text
    assert "% world" in text


def test_read_pattern_file(tmp_path):
    path = tmp_path / "pattern.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "3 3 2\n"
        "1 1\n"
        "3 2\n"
    )
    A = read_matrix_market(path)
    assert A.get(0, 0) == 1.0
    assert A.get(2, 1) == 1.0
    assert A.nnz == 2


def test_read_integer_field(tmp_path):
    path = tmp_path / "int.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate integer general\n"
        "2 2 2\n"
        "1 1 4\n"
        "2 2 -7\n"
    )
    A = read_matrix_market(path)
    assert A.get(1, 1) == pytest.approx(-7.0)


def test_read_rejects_bad_header(tmp_path):
    path = tmp_path / "bad.mtx"
    path.write_text("not a matrix market file\n1 1 0\n")
    with pytest.raises(ValueError):
        read_matrix_market(path)


def test_read_rejects_unsupported_format(tmp_path):
    path = tmp_path / "bad2.mtx"
    path.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
    with pytest.raises(ValueError):
        read_matrix_market(path)


def test_read_rejects_wrong_entry_count(tmp_path):
    path = tmp_path / "bad3.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 3\n"
        "1 1 1.0\n"
    )
    with pytest.raises(ValueError):
        read_matrix_market(path)


def test_read_skips_comment_lines(tmp_path):
    path = tmp_path / "comments.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment\n"
        "% another comment\n"
        "2 2 1\n"
        "2 1 5.0\n"
    )
    A = read_matrix_market(path)
    assert A.get(1, 0) == pytest.approx(5.0)
