"""Tests for the Eigen-like and CHOLMOD-like baselines."""

import numpy as np
import pytest

from repro.baselines.cholmod_like import (
    cholmod_like_factorize,
    cholmod_like_numeric,
    cholmod_like_symbolic,
)
from repro.baselines.eigen_like import (
    eigen_like_factorize,
    eigen_like_numeric,
    eigen_like_symbolic,
    eigen_like_trisolve,
)
from repro.baselines.scipy_reference import (
    reference_cholesky,
    reference_solve,
    reference_trisolve,
)
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import sparse_rhs


def test_eigen_like_factorization_matches_reference(spd_matrix):
    result = eigen_like_factorize(spd_matrix)
    np.testing.assert_allclose(result.L.to_dense(), reference_cholesky(spd_matrix), atol=1e-9)
    assert result.symbolic.seconds >= 0.0
    assert result.numeric_seconds >= 0.0


def test_cholmod_like_factorization_matches_reference(spd_matrix):
    result = cholmod_like_factorize(spd_matrix)
    np.testing.assert_allclose(result.L.to_dense(), reference_cholesky(spd_matrix), atol=1e-9)


def test_symbolic_phase_is_reusable_across_value_changes(spd_matrices):
    A = spd_matrices["fem"]
    symbolic = eigen_like_symbolic(A)
    L1 = eigen_like_numeric(A, symbolic)
    # Scale the values: the pattern (and hence the symbolic result) is unchanged.
    A2 = A.scale(2.0)
    L2 = eigen_like_numeric(A2, symbolic)
    np.testing.assert_allclose(L2.to_dense(), np.sqrt(2.0) * L1.to_dense(), atol=1e-9)


def test_cholmod_symbolic_reuse(spd_matrices):
    A = spd_matrices["block"]
    symbolic = cholmod_like_symbolic(A)
    L1 = cholmod_like_numeric(A, symbolic)
    L2 = cholmod_like_numeric(A.scale(4.0), symbolic)
    np.testing.assert_allclose(L2.to_dense(), 2.0 * L1.to_dense(), atol=1e-9)


def test_symbolic_records_factor_size(spd_matrices):
    A = spd_matrices["laplacian_2d"]
    eigen_sym = eigen_like_symbolic(A)
    cholmod_sym = cholmod_like_symbolic(A)
    assert eigen_sym.factor_nnz == cholmod_sym.factor_nnz
    assert cholmod_sym.supernodes.n_columns == A.n


def test_baselines_agree_with_each_other(spd_matrix):
    e = eigen_like_factorize(spd_matrix)
    c = cholmod_like_factorize(spd_matrix)
    np.testing.assert_allclose(e.L.to_dense(), c.L.to_dense(), atol=1e-9)


def test_eigen_like_trisolve(lower_factors):
    L = lower_factors["circuit"]
    b = sparse_rhs(L.n, density=0.05, seed=2)
    np.testing.assert_allclose(eigen_like_trisolve(L, b), reference_trisolve(L, b), atol=1e-9)


def test_symbolic_order_mismatch_detected(spd_matrices):
    symbolic = eigen_like_symbolic(spd_matrices["fem"])
    with pytest.raises(ValueError):
        eigen_like_numeric(spd_matrices["banded"], symbolic)
    cholmod_sym = cholmod_like_symbolic(spd_matrices["fem"])
    with pytest.raises(ValueError):
        cholmod_like_numeric(spd_matrices["banded"], cholmod_sym)


def test_baselines_reject_non_square():
    rect = CSCMatrix.from_dense(np.ones((2, 3)))
    with pytest.raises(ValueError):
        eigen_like_symbolic(rect)
    with pytest.raises(ValueError):
        cholmod_like_symbolic(rect)


def test_reference_solve_consistency(spd_matrices, rng):
    A = spd_matrices["laplacian_2d"]
    x_true = rng.normal(size=A.n)
    b = A.matvec(x_true)
    np.testing.assert_allclose(reference_solve(A, b), x_true, atol=1e-8)
