"""Cross-module integration tests: the full pipeline on realistic workflows."""

import numpy as np
import pytest

from repro.baselines import (
    cholmod_like_factorize,
    eigen_like_factorize,
    reference_solve,
)
from repro.compiler.options import SympilerOptions
from repro.compiler.sympiler import Sympiler
from repro.kernels.flops import cholesky_flops, triangular_solve_flops
from repro.solvers import SparseLinearSolver
from repro.sparse.generators import (
    block_tridiagonal_spd,
    circuit_like_spd,
    fem_stencil_2d,
    sparse_rhs,
)
from repro.sparse.ordering import minimum_degree_ordering
from repro.sparse.utils import residual_norm


def test_full_direct_solver_pipeline(rng):
    """generate → order → inspect → generate code → factorize → solve."""
    A = fem_stencil_2d(14, 14, shift=0.2)
    solver = SparseLinearSolver(A, ordering="mindeg")
    for _ in range(3):
        x_true = rng.normal(size=A.n)
        b = A.matvec(x_true)
        x = solver.solve(b)
        assert residual_norm(A, x, b) < 1e-10


def test_repeated_factorization_fixed_pattern_changing_values(rng):
    """The paper's central usage pattern: one compile, many numeric runs."""
    A = circuit_like_spd(150, seed=8)
    perm = minimum_degree_ordering(A)
    B = perm.symmetric_permute(A)
    compiled = Sympiler().compile_cholesky(B)
    for scale in (1.0, 2.5, 7.0):
        Bk = B.scale(scale)
        L = compiled.factorize(Bk)
        dense = L.to_dense()
        np.testing.assert_allclose(dense @ dense.T, Bk.to_dense(), atol=1e-7)


def test_all_systems_produce_the_same_factor():
    """Sympiler, Eigen-like and CHOLMOD-like must agree numerically."""
    A = block_tridiagonal_spd(8, 6, seed=4, dense_coupling=True)
    sympiler_L = Sympiler().compile_cholesky(A).factorize(A)
    eigen_L = eigen_like_factorize(A).L
    cholmod_L = cholmod_like_factorize(A).L
    np.testing.assert_allclose(sympiler_L.to_dense(), eigen_L.to_dense(), atol=1e-9)
    np.testing.assert_allclose(sympiler_L.to_dense(), cholmod_L.to_dense(), atol=1e-9)


def test_option_variants_are_numerically_identical(spd_matrices):
    """Every transformation combination computes the same factor and solution."""
    A = spd_matrices["block"]
    b = sparse_rhs(A.n, nnz=3, seed=5)
    sym = Sympiler()
    references = None
    for options in (
        SympilerOptions.vi_prune_only(),
        SympilerOptions.vs_block_only(),
        SympilerOptions(enable_low_level=False),
        SympilerOptions(),
        SympilerOptions(transformation_order=("vi-prune", "vs-block")),
    ):
        chol = sym.compile_cholesky(A, options=options)
        L = chol.factorize(A)
        tri = sym.compile_triangular_solve(L, rhs_pattern=np.nonzero(b)[0], options=options)
        x = tri.solve(L, b)
        if references is None:
            references = (L.to_dense(), x)
        else:
            np.testing.assert_allclose(L.to_dense(), references[0], atol=1e-10)
            np.testing.assert_allclose(x, references[1], atol=1e-10)


def test_solution_of_spd_system_via_generated_kernels(rng):
    """Factor + forward/backward substitution solves A x = b."""
    A = fem_stencil_2d(10, 10, shift=0.4)
    solver = SparseLinearSolver(A, ordering="rcm")
    b = rng.normal(size=A.n)
    np.testing.assert_allclose(solver.solve(b), reference_solve(A, b), atol=1e-7)


def test_flop_counts_are_consistent_between_methods():
    """The Cholesky FLOP count dominates the triangular-solve count."""
    A = fem_stencil_2d(12, 12)
    compiled = Sympiler().compile_cholesky(A)
    L = compiled.factorize(A)
    chol_flops = cholesky_flops(compiled.inspection.l_col_counts)
    tri_flops = triangular_solve_flops(L)
    assert chol_flops > tri_flops > 0


def test_compile_time_is_reported_separately_from_numeric_time():
    """Symbolic + codegen timings never leak into the numeric entry point."""
    A = circuit_like_spd(120, seed=3)
    compiled = Sympiler().compile_cholesky(A)
    assert compiled.timings.inspection > 0.0
    assert compiled.timings.codegen > 0.0
    import time

    start = time.perf_counter()
    compiled.factorize(A)
    numeric = time.perf_counter() - start
    # The numeric call must not re-run inspection/codegen: it should be much
    # cheaper than the recorded compile-time total on repeat executions.
    start = time.perf_counter()
    compiled.factorize(A)
    second = time.perf_counter() - start
    assert second <= numeric * 10 + 0.1
