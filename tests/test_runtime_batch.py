"""Tests for the batched numeric runtime (engine, facade, ensemble Newton).

The acceptance bar of the subsystem: ``factorize_batch`` over >= 8 value
sets is bitwise identical per item to sequential ``factorize`` on every
execution strategy (serial, stacked, threaded C), with per-item error
isolation and deterministic result ordering.
"""

import numpy as np
import pytest

from repro.compiler.codegen.c_backend import c_compiler_available
from repro.compiler.options import SympilerOptions
from repro.runtime.engine import BatchExecutor, resolve_num_threads
from repro.runtime.facade import BatchedSolver
from repro.solvers.linear_solver import SparseLinearSolver
from repro.solvers.newton import newton_raphson_ensemble
from repro.sparse.generators import (
    laplacian_2d,
    saddle_point_indefinite,
    unsymmetric_diag_dominant,
)

needs_cc = pytest.mark.skipif(
    not c_compiler_available("cc"), reason="no C compiler available"
)

BATCH = 9  # >= 8 per the acceptance criterion


def _spd_scenarios(A, batch=BATCH):
    """Same-pattern SPD value sets (diagonal sweep keeps them SPD)."""
    out = []
    for b in range(batch):
        data = A.data.copy()
        diag_scale = 1.0 + 0.05 * b
        for j in range(A.n):
            sl = A.col_slice(j)
            rows = A.indices[sl.start : sl.stop]
            k = int(np.nonzero(rows == j)[0][0])
            data[sl.start + k] *= diag_scale
        out.append(A.with_values(data))
    return out


def _assert_bitwise_vs_sequential(batched: BatchedSolver, scenarios):
    seq = SparseLinearSolver(
        batched.A,
        method=batched.method,
        ordering="natural",
        options=batched.solver.options,
    )
    handles = batched.factorize_batch(scenarios)
    assert [h.index for h in handles] == list(range(len(scenarios)))
    for handle, M in zip(handles, scenarios):
        assert handle.ok
        seq.factorize(M)
        assert np.array_equal(handle.L.data, seq.L.data)
        if seq.d is not None:
            assert np.array_equal(handle.d, seq.d)
        if seq.U is not None:
            assert np.array_equal(handle.U.data, seq.U.data)
    return handles


class TestBitwiseIdentity:
    def test_python_stacked_cholesky(self):
        A = laplacian_2d(9, shift=0.1)
        options = SympilerOptions(backend="python", enable_vs_block=False)
        batched = BatchedSolver(A, ordering="natural", options=options)
        assert batched.mode == "stacked"
        _assert_bitwise_vs_sequential(batched, _spd_scenarios(A))
        assert batched.last_result.mode == "stacked"

    def test_python_serial_supernodal_cholesky(self):
        A = laplacian_2d(9, shift=0.1)
        options = SympilerOptions(backend="python")  # VS-Block may participate
        batched = BatchedSolver(A, ordering="natural", options=options)
        _assert_bitwise_vs_sequential(batched, _spd_scenarios(A))

    def test_python_stacked_ldlt(self):
        K = saddle_point_indefinite(28, 10, seed=5)
        options = SympilerOptions(backend="python", enable_vs_block=False)
        batched = BatchedSolver(K, method="ldlt", ordering="natural", options=options)
        handles = _assert_bitwise_vs_sequential(batched, _spd_scenarios(K))
        assert batched.last_result.mode == "stacked"
        assert all(h.d is not None for h in handles)

    def test_python_stacked_lu(self):
        J = unsymmetric_diag_dominant(50, seed=6)
        options = SympilerOptions(backend="python", enable_vs_block=False)
        batched = BatchedSolver(J, method="lu", ordering="natural", options=options)
        handles = _assert_bitwise_vs_sequential(
            batched, [J.with_values(J.data * (1.0 + 0.1 * b)) for b in range(BATCH)]
        )
        assert batched.last_result.mode == "stacked"
        assert all(h.U is not None for h in handles)

    @needs_cc
    def test_c_threaded_cholesky(self):
        A = laplacian_2d(9, shift=0.1)
        options = SympilerOptions(backend="c", num_threads=4)
        batched = BatchedSolver(A, ordering="natural", options=options)
        assert batched.mode == "threads"
        _assert_bitwise_vs_sequential(batched, _spd_scenarios(A))
        assert batched.last_result.mode == "threads"
        assert batched.last_result.num_threads == 4

    @needs_cc
    def test_c_threaded_lu(self):
        J = unsymmetric_diag_dominant(60, seed=8)
        options = SympilerOptions(backend="c", num_threads=2)
        batched = BatchedSolver(J, method="lu", ordering="natural", options=options)
        _assert_bitwise_vs_sequential(
            batched, [J.with_values(J.data * (1.0 + 0.1 * b)) for b in range(BATCH)]
        )

    @needs_cc
    def test_generated_c_work_buffers_are_thread_local(self):
        """The reentrancy contract the threaded path relies on."""
        A = laplacian_2d(6, shift=0.1)
        options = SympilerOptions(backend="c")
        artifact = BatchedSolver(A, ordering="natural", options=options).solver._factorization
        assert "_Thread_local" in artifact.source


class TestErrorIsolation:
    @pytest.mark.parametrize("backend", ["python"])
    def test_singular_item_is_isolated_stacked(self, backend):
        K = saddle_point_indefinite(24, 8, seed=2)
        options = SympilerOptions(backend=backend, enable_vs_block=False)
        batched = BatchedSolver(K, method="ldlt", ordering="natural", options=options)
        scenarios = _spd_scenarios(K)
        scenarios[3] = K.with_values(np.zeros(K.nnz))
        handles = batched.factorize_batch(scenarios)
        assert [h.ok for h in handles] == [i != 3 for i in range(BATCH)]
        assert "singular" in str(handles[3].error)
        # Failed handles refuse to solve but keep their error chained.
        with pytest.raises(RuntimeError, match="batch item 3"):
            handles[3].solve(np.ones(K.n))
        # Healthy neighbours still solve to full accuracy.
        b = np.ones(K.n)
        x = handles[2].solve(b)
        r = scenarios[2].matvec(x) - b
        assert np.linalg.norm(r) < 1e-7

    @needs_cc
    def test_singular_item_is_isolated_threads(self):
        K = saddle_point_indefinite(24, 8, seed=2)
        options = SympilerOptions(backend="c", num_threads=2)
        batched = BatchedSolver(K, method="ldlt", ordering="natural", options=options)
        scenarios = _spd_scenarios(K)
        scenarios[0] = K.with_values(np.zeros(K.nnz))
        handles = batched.factorize_batch(scenarios)
        assert not handles[0].ok and all(h.ok for h in handles[1:])
        assert batched.last_result.errors[0].index == 0

    def test_batch_result_raise_first(self):
        A = laplacian_2d(6, shift=0.1)
        options = SympilerOptions(backend="python", enable_vs_block=False)
        batched = BatchedSolver(A, ordering="natural", options=options)
        scenarios = _spd_scenarios(A, batch=3)
        scenarios[1] = A.with_values(-A.data)
        result = batched.executor.factorize_batch(
            batched.solver.A_permuted.indptr,
            batched.solver.A_permuted.indices,
            [batched.solver.permutation.symmetric_permute(M).data for M in scenarios],
        )
        assert not result.ok and result.n_items == 3
        with pytest.raises(ValueError, match="not positive definite"):
            result.raise_first()


class TestFacade:
    def test_rejects_pattern_mismatch(self):
        A = laplacian_2d(6, shift=0.1)
        B = laplacian_2d(7, shift=0.1)
        batched = BatchedSolver(A, options=SympilerOptions())
        with pytest.raises(ValueError, match="scenario 0"):
            batched.factorize_batch([B])

    def test_accepts_raw_value_array_batch_with_explicit_flag(self):
        A = laplacian_2d(6, shift=0.1)
        options = SympilerOptions(backend="python", enable_vs_block=False)
        batched = BatchedSolver(A, ordering="natural", options=options)
        permuted = batched.solver.A_permuted
        values = np.stack([permuted.data * (1.0 + 0.1 * b) for b in range(4)])
        # Raw arrays are position-order ambiguous: the flag is mandatory.
        with pytest.raises(ValueError, match="permuted_values=True"):
            batched.factorize_batch(values)
        handles = batched.factorize_batch(values, permuted_values=True)
        assert all(h.ok for h in handles)
        with pytest.raises(ValueError, match="permuted pattern"):
            batched.factorize_batch(values[:, :-1], permuted_values=True)

    def test_value_gather_matches_symmetric_permute(self):
        """The precomputed gather is exactly symmetric_permute on values."""
        A = laplacian_2d(7, shift=0.1)
        batched = BatchedSolver(A, options=SympilerOptions())  # mindeg ordering
        rng = np.random.default_rng(11)
        M = A.with_values(A.data + 0.001 * rng.standard_normal(A.nnz))
        expected = batched.solver.permutation.symmetric_permute(M).data
        assert np.array_equal(M.data[batched._value_permutation], expected)

    def test_solve_many_matches_column_solves(self):
        A = laplacian_2d(7, shift=0.1)
        batched = BatchedSolver(A, options=SympilerOptions())
        B = np.eye(A.n)[:, :5]
        X = batched.solve_many(B)
        for k in range(5):
            assert np.array_equal(X[:, k], batched.solver.solve(B[:, k]))

    def test_schedule_exposed(self):
        A = laplacian_2d(6, shift=0.1)
        batched = BatchedSolver(A, options=SympilerOptions())
        assert batched.schedule.n_scheduled == A.n

    def test_resolve_num_threads(self):
        assert resolve_num_threads(None) == 1
        assert resolve_num_threads(3) == 3
        assert resolve_num_threads(0) >= 1
        with pytest.raises(ValueError):
            resolve_num_threads(-1)
        with pytest.raises(ValueError):
            SympilerOptions(num_threads=-2)

    def test_executor_rejects_wrong_value_shape(self):
        A = laplacian_2d(5, shift=0.1)
        solver = SparseLinearSolver(A, ordering="natural", options=SympilerOptions())
        executor = BatchExecutor(solver._factorization)
        with pytest.raises(ValueError, match="value set 0"):
            executor.factorize_batch(
                solver.A_permuted.indptr,
                solver.A_permuted.indices,
                [np.ones(3)],
            )


class TestEnsembleNewton:
    @staticmethod
    def _make_scenario(A, diag_positions, s):
        """A mildly nonlinear scenario: F(x) = A x + c tanh(x) - b_s."""
        rng = np.random.default_rng(100 + s)
        b = rng.standard_normal(A.n)
        c = 0.2 + 0.05 * s

        def residual(x):
            return A.matvec(x) + c * np.tanh(x) - b

        def jacobian(x):
            data = A.data.copy()
            data[diag_positions] += c / np.cosh(x) ** 2
            return A.with_values(data)

        return residual, jacobian

    def _diag_positions(self, A):
        return np.array(
            [
                A.indptr[j] + int(np.nonzero(A.col_rows(j) == j)[0][0])
                for j in range(A.n)
            ]
        )

    def test_ensemble_converges_all_scenarios(self):
        A = unsymmetric_diag_dominant(40, seed=21)
        dp = self._diag_positions(A)
        fns = [self._make_scenario(A, dp, s) for s in range(5)]
        results = newton_raphson_ensemble(
            [f for f, _ in fns],
            [j for _, j in fns],
            [np.zeros(A.n)] * 5,
            method="lu",
            tol=1e-10,
            max_iterations=30,
        )
        assert len(results) == 5
        for s, res in enumerate(results):
            assert res.converged, f"scenario {s} did not converge"
            assert res.factorizations >= 1
            F, _ = fns[s]
            assert np.linalg.norm(F(res.x)) <= 1e-10

    def test_ensemble_isolates_singular_scenario(self):
        A = unsymmetric_diag_dominant(30, seed=22)
        dp = self._diag_positions(A)
        good = [self._make_scenario(A, dp, s) for s in range(3)]

        def bad_jacobian(x):
            return A.with_values(np.zeros(A.nnz))

        residuals = [good[0][0], good[1][0], good[2][0]]
        jacobians = [good[0][1], bad_jacobian, good[2][1]]
        results = newton_raphson_ensemble(
            residuals,
            jacobians,
            [np.zeros(A.n)] * 3,
            method="lu",
            tol=1e-10,
            max_iterations=20,
        )
        assert results[0].converged and results[2].converged
        assert not results[1].converged
        assert results[1].factorizations == 0

    def test_ensemble_validates_lengths_and_empty(self):
        with pytest.raises(ValueError, match="equal length"):
            newton_raphson_ensemble([lambda x: x], [], [])
        assert newton_raphson_ensemble([], [], []) == []


class TestRuntimeOnlyOptions:
    def test_num_threads_does_not_fragment_artifact_cache(self):
        from repro.compiler.cache import ArtifactCache
        from repro.compiler.sympiler import Sympiler

        A = laplacian_2d(6, shift=0.1)
        sym = Sympiler(cache=ArtifactCache())
        first = sym.compile("cholesky", A, options=SympilerOptions(num_threads=1))
        second = sym.compile("cholesky", A, options=SympilerOptions(num_threads=4))
        # num_threads is a runtime-only knob: same artifact, a cache hit.
        assert second is first

    def test_facade_threads_follow_requested_options_despite_cache_hit(self):
        from repro.compiler.codegen.c_backend import c_compiler_available

        backend = "c" if c_compiler_available("cc") else "python"
        A = laplacian_2d(6, shift=0.1)
        BatchedSolver(A, options=SympilerOptions(backend=backend, num_threads=1))
        again = BatchedSolver(A, options=SympilerOptions(backend=backend, num_threads=3))
        # The second construction hits the shared artifact cache (compiled
        # under num_threads=1); the executor must still honour the request.
        assert again.num_threads == 3


class TestSolveBatch:
    def test_trisolve_artifact_batches_rhs_bitwise(self):
        from repro.compiler.cache import ArtifactCache
        from repro.compiler.sympiler import Sympiler

        A = laplacian_2d(6, shift=0.1)
        sym = Sympiler(cache=ArtifactCache())
        L = sym.compile("cholesky", A).factorize(A)
        tri = sym.compile("triangular-solve", L)
        executor = BatchExecutor(tri)
        rng = np.random.default_rng(3)
        B = rng.standard_normal((5, A.n))
        result = executor.solve_batch(L.indptr, L.indices, L.data, B)
        assert result.ok
        for k in range(5):
            expected = tri.solve_arrays(L.indptr, L.indices, L.data, B[k])
            assert np.array_equal(result.results[k], expected)

    def test_factorization_artifact_rejected(self):
        solver = SparseLinearSolver(
            laplacian_2d(5, shift=0.1), ordering="natural", options=SympilerOptions()
        )
        executor = BatchExecutor(solver._factorization)
        with pytest.raises(TypeError, match="solve_arrays"):
            executor.solve_batch(
                solver.L.indptr, solver.L.indices, solver.L.data, [np.ones(solver.A.n)]
            )


class TestEnsembleFirstScenarioSingular:
    def test_singular_first_jacobian_is_isolated_not_fatal(self):
        """Solver construction happens outside batch isolation; guard it."""
        A = unsymmetric_diag_dominant(30, seed=23)
        dp = TestEnsembleNewton._diag_positions(TestEnsembleNewton(), A)
        good = [TestEnsembleNewton._make_scenario(A, dp, s) for s in range(2)]

        def bad_jacobian(x):
            return A.with_values(np.zeros(A.nnz))

        results = newton_raphson_ensemble(
            [good[0][0], good[0][0], good[1][0]],
            [bad_jacobian, good[0][1], good[1][1]],
            [np.zeros(A.n)] * 3,
            method="lu",
            tol=1e-10,
            max_iterations=20,
        )
        assert not results[0].converged
        assert results[1].converged and results[2].converged


def test_stacked_handles_own_their_memory():
    """A retained handle must not pin the whole stacked batch array."""
    A = laplacian_2d(7, shift=0.1)
    options = SympilerOptions(backend="python", enable_vs_block=False)
    batched = BatchedSolver(A, ordering="natural", options=options)
    handles = batched.factorize_batch(_spd_scenarios(A, batch=4))
    assert batched.last_result.mode == "stacked"
    for h in handles:
        raw = h._raw if not isinstance(h._raw, tuple) else h._raw[0]
        assert raw.base is None  # an owning copy, not a view of the batch
