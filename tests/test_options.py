"""Tests for SympilerOptions."""

import pytest

from repro.compiler.options import SympilerOptions


def test_defaults_follow_the_paper():
    opts = SympilerOptions()
    assert opts.backend == "python"
    assert opts.transformation_order == ("vs-block", "vi-prune")
    assert opts.enable_vi_prune and opts.enable_vs_block and opts.enable_low_level


def test_active_transformations_respects_toggles():
    assert SympilerOptions().active_transformations() == ("vs-block", "vi-prune")
    assert SympilerOptions(enable_vs_block=False).active_transformations() == ("vi-prune",)
    assert SympilerOptions(enable_vi_prune=False).active_transformations() == ("vs-block",)
    assert SympilerOptions.baseline().active_transformations() == ()


def test_active_transformations_respects_order():
    opts = SympilerOptions(transformation_order=("vi-prune", "vs-block"))
    assert opts.active_transformations() == ("vi-prune", "vs-block")


def test_named_constructors():
    assert SympilerOptions.vi_prune_only().active_transformations() == ("vi-prune",)
    assert SympilerOptions.vs_block_only().active_transformations() == ("vs-block",)
    assert SympilerOptions.all_transformations().enable_low_level


def test_with_updates_returns_new_instance():
    base = SympilerOptions()
    other = base.with_updates(backend="c", unroll_max_width=6)
    assert other.backend == "c"
    assert other.unroll_max_width == 6
    assert base.backend == "python"


def test_validation_rejects_bad_values():
    with pytest.raises(ValueError):
        SympilerOptions(backend="fortran")
    with pytest.raises(ValueError):
        SympilerOptions(transformation_order=("vs-block", "vs-block"))
    with pytest.raises(ValueError):
        SympilerOptions(transformation_order=("loop-fusion",))
    with pytest.raises(ValueError):
        SympilerOptions(vs_block_min_supernode_width=0)
    with pytest.raises(ValueError):
        SympilerOptions(max_supernode_width=0)
    with pytest.raises(ValueError):
        SympilerOptions(peel_colcount_threshold=0)
    with pytest.raises(ValueError):
        SympilerOptions(max_peeled_iterations=-1)
    with pytest.raises(ValueError):
        SympilerOptions(unroll_max_width=0)
    with pytest.raises(ValueError):
        SympilerOptions(vectorize_min_length=0)


def test_options_are_immutable():
    opts = SympilerOptions()
    with pytest.raises(Exception):
        opts.backend = "c"


def test_repro_cflags_env_overrides_default(monkeypatch):
    monkeypatch.setenv("REPRO_CFLAGS", "-O2 -fPIC -shared")
    assert SympilerOptions().c_flags == ("-O2", "-fPIC", "-shared")
    monkeypatch.delenv("REPRO_CFLAGS")
    assert "-march=native" in SympilerOptions().c_flags


def test_repro_cc_env_overrides_default(monkeypatch):
    monkeypatch.setenv("REPRO_CC", "clang-19")
    assert SympilerOptions().c_compiler == "clang-19"
    monkeypatch.delenv("REPRO_CC")
    assert SympilerOptions().c_compiler == "cc"
