"""Tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.sparse.generators import (
    arrow_spd,
    banded_spd,
    block_tridiagonal_spd,
    circuit_like_spd,
    fem_stencil_2d,
    laplacian_2d,
    laplacian_3d,
    power_grid_spd,
    random_spd,
    sparse_rhs,
)
from repro.sparse.utils import is_numerically_symmetric, is_symmetric_pattern


def _assert_spd(A):
    assert A.is_square()
    assert is_symmetric_pattern(A)
    assert is_numerically_symmetric(A)
    eigvals = np.linalg.eigvalsh(A.to_dense())
    assert eigvals.min() > 0.0


def test_laplacian_2d_structure():
    A = laplacian_2d(4, 3)
    assert A.n == 12
    _assert_spd(A)
    # Interior nodes have 4 off-diagonal neighbours.
    assert A.nnz == 12 + 2 * ((4 - 1) * 3 + 4 * (3 - 1))


def test_laplacian_3d_structure():
    A = laplacian_3d(3, 2, 2)
    assert A.n == 12
    _assert_spd(A)


def test_fem_stencil_2d():
    A = fem_stencil_2d(5)
    assert A.n == 25
    _assert_spd(A)
    # The 9-point stencil has more nonzeros than the 5-point one.
    assert A.nnz > laplacian_2d(5).nnz


def test_banded_spd_bandwidth():
    A = banded_spd(30, 3, seed=1)
    _assert_spd(A)
    for j in range(A.n):
        rows = A.col_rows(j)
        assert np.all(np.abs(rows - j) <= 3)


def test_banded_spd_partial_fill():
    full = banded_spd(30, 4, seed=1, fill=1.0)
    partial = banded_spd(30, 4, seed=1, fill=0.3)
    assert partial.nnz < full.nnz
    _assert_spd(partial)


def test_block_tridiagonal_spd():
    A = block_tridiagonal_spd(4, 6, seed=2)
    assert A.n == 24
    _assert_spd(A)


def test_block_tridiagonal_dense_coupling_has_more_nonzeros():
    sparse_coupling = block_tridiagonal_spd(4, 6, seed=2)
    dense_coupling = block_tridiagonal_spd(4, 6, seed=2, dense_coupling=True)
    assert dense_coupling.nnz > sparse_coupling.nnz
    _assert_spd(dense_coupling)


def test_arrow_spd():
    A = arrow_spd(20, 2, seed=3)
    _assert_spd(A)
    # The last rows are dense.
    assert A.col_nnz(0) >= 3


def test_arrow_spd_width_validation():
    with pytest.raises(ValueError):
        arrow_spd(10, 10)


def test_random_spd_density():
    A = random_spd(60, 0.05, seed=4)
    _assert_spd(A)
    offdiag = A.nnz - 60
    assert 0 < offdiag < 2 * 0.10 * 60 * 59 / 2


def test_random_spd_zero_density_is_diagonal():
    A = random_spd(10, 0.0, seed=1)
    assert A.nnz == 10
    _assert_spd(A)


def test_circuit_like_spd():
    A = circuit_like_spd(80, seed=5)
    _assert_spd(A)
    degrees = np.diff(A.indptr) - 1
    # Hubs make the degree distribution right-skewed.
    assert degrees.max() > degrees.mean() + 2


def test_power_grid_spd():
    A = power_grid_spd(50, seed=6)
    _assert_spd(A)


def test_generator_argument_validation():
    with pytest.raises(ValueError):
        laplacian_2d(0)
    with pytest.raises(ValueError):
        laplacian_3d(2, -1)
    with pytest.raises(ValueError):
        banded_spd(10, -1)
    with pytest.raises(ValueError):
        block_tridiagonal_spd(0, 5)
    with pytest.raises(ValueError):
        random_spd(10, 1.5)
    with pytest.raises(ValueError):
        circuit_like_spd(1)
    with pytest.raises(ValueError):
        power_grid_spd(2)


def test_generators_are_reproducible():
    a = circuit_like_spd(40, seed=9)
    b = circuit_like_spd(40, seed=9)
    assert a.pattern_equal(b)
    np.testing.assert_allclose(a.data, b.data)


def test_sparse_rhs_density():
    b = sparse_rhs(200, density=0.02, seed=0)
    assert b.shape == (200,)
    assert np.count_nonzero(b) == 4


def test_sparse_rhs_nnz():
    b = sparse_rhs(100, nnz=7, seed=1)
    assert np.count_nonzero(b) == 7
    assert np.all(b[b != 0] > 0)


def test_sparse_rhs_validation():
    with pytest.raises(ValueError):
        sparse_rhs(0)
    with pytest.raises(ValueError):
        sparse_rhs(10, nnz=2, density=0.5)


def test_sparse_rhs_always_has_a_nonzero():
    b = sparse_rhs(50, density=1e-6, seed=2)
    assert np.count_nonzero(b) >= 1


def test_unsymmetric_diag_dominant_structure():
    from repro.sparse.generators import unsymmetric_diag_dominant

    A = unsymmetric_diag_dominant(80, seed=3)
    assert A.is_square() and A.has_full_diagonal()
    # Genuinely unsymmetric: the pattern itself differs between triangles.
    assert not is_symmetric_pattern(A)
    dense = A.to_dense()
    diag = np.abs(np.diag(dense))
    off = np.abs(dense) - np.diag(diag)
    # Strict diagonal dominance by rows AND columns: no-pivot LU is stable
    # and every pivot is nonzero.
    assert np.all(diag > off.sum(axis=1))
    assert np.all(diag > off.sum(axis=0))


def test_unsymmetric_diag_dominant_reproducible_and_validated():
    from repro.sparse.generators import unsymmetric_diag_dominant

    a = unsymmetric_diag_dominant(50, seed=11)
    b = unsymmetric_diag_dominant(50, seed=11)
    assert a.pattern_equal(b)
    np.testing.assert_allclose(a.data, b.data)
    with pytest.raises(ValueError):
        unsymmetric_diag_dominant(0)
    with pytest.raises(ValueError):
        unsymmetric_diag_dominant(10, avg_nnz_per_col=-1.0)
