"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.cholesky import cholesky_left_looking
from repro.sparse.generators import (
    banded_spd,
    block_tridiagonal_spd,
    circuit_like_spd,
    fem_stencil_2d,
    laplacian_2d,
    laplacian_3d,
    power_grid_spd,
    random_spd,
)
from repro.sparse.generators import arrow_spd
from repro.symbolic.inspector import CholeskyInspector


def _spd_matrices():
    return {
        "laplacian_2d": laplacian_2d(7),
        "laplacian_3d": laplacian_3d(4),
        "fem": fem_stencil_2d(6),
        "banded": banded_spd(35, 4, seed=1),
        "block": block_tridiagonal_spd(5, 5, seed=2),
        "circuit": circuit_like_spd(48, seed=3),
        "random": random_spd(40, 0.06, seed=4),
        "grid": power_grid_spd(42, seed=5),
        "arrow": arrow_spd(30, 2, seed=6),
    }


@pytest.fixture(scope="session")
def spd_matrices():
    """A dictionary of small SPD matrices covering every generator class."""
    return _spd_matrices()


@pytest.fixture(scope="session", params=sorted(_spd_matrices().keys()))
def spd_matrix(request, spd_matrices):
    """Parametrized fixture yielding each small SPD matrix in turn."""
    return spd_matrices[request.param]


@pytest.fixture(scope="session")
def lower_factors(spd_matrices):
    """Cholesky factors (exact, with fill) of the small SPD matrices."""
    factors = {}
    for name, A in spd_matrices.items():
        inspection = CholeskyInspector().inspect(A)
        factors[name] = cholesky_left_looking(A, inspection)
    return factors


@pytest.fixture()
def rng():
    """A seeded random generator for reproducible randomized tests."""
    return np.random.default_rng(12345)
