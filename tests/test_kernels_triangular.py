"""Tests for the sparse triangular-solve kernel variants."""

import numpy as np
import pytest

from repro.baselines.scipy_reference import reference_trisolve
from repro.kernels.triangular import (
    trisolve_decoupled,
    trisolve_library,
    trisolve_naive,
    trisolve_supernodal,
)
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import sparse_rhs
from repro.symbolic.inspector import TriangularSolveInspector


@pytest.fixture(params=["laplacian_2d", "fem", "banded", "block", "circuit", "arrow"])
def factor(request, lower_factors):
    return lower_factors[request.param]


def _inspect(L, b):
    return TriangularSolveInspector().inspect(L, rhs_pattern=np.nonzero(b)[0])


def test_naive_matches_reference_dense_rhs(factor, rng):
    b = rng.normal(size=factor.n)
    np.testing.assert_allclose(trisolve_naive(factor, b), reference_trisolve(factor, b), atol=1e-9)


def test_library_matches_reference_sparse_rhs(factor):
    b = sparse_rhs(factor.n, density=0.05, seed=3)
    np.testing.assert_allclose(
        trisolve_library(factor, b), reference_trisolve(factor, b), atol=1e-9
    )


def test_decoupled_matches_reference(factor):
    b = sparse_rhs(factor.n, density=0.05, seed=4)
    ins = _inspect(factor, b)
    np.testing.assert_allclose(
        trisolve_decoupled(factor, b, ins.reach), reference_trisolve(factor, b), atol=1e-9
    )


def test_decoupled_with_sorted_reach(factor):
    b = sparse_rhs(factor.n, density=0.05, seed=5)
    ins = _inspect(factor, b)
    np.testing.assert_allclose(
        trisolve_decoupled(factor, b, ins.reach_sorted),
        reference_trisolve(factor, b),
        atol=1e-9,
    )


def test_supernodal_matches_reference(factor):
    b = sparse_rhs(factor.n, density=0.08, seed=6)
    ins = _inspect(factor, b)
    np.testing.assert_allclose(
        trisolve_supernodal(factor, b, ins.supernodes, ins.reach_sorted),
        reference_trisolve(factor, b),
        atol=1e-9,
    )


def test_supernodal_without_reach_processes_everything(factor, rng):
    b = rng.normal(size=factor.n)
    ins = TriangularSolveInspector().inspect(factor)
    np.testing.assert_allclose(
        trisolve_supernodal(factor, b, ins.supernodes),
        reference_trisolve(factor, b),
        atol=1e-9,
    )


def test_all_variants_agree(factor):
    b = sparse_rhs(factor.n, density=0.03, seed=7)
    ins = _inspect(factor, b)
    x1 = trisolve_naive(factor, b)
    x2 = trisolve_library(factor, b)
    x3 = trisolve_decoupled(factor, b, ins.reach)
    x4 = trisolve_supernodal(factor, b, ins.supernodes, ins.reach_sorted)
    np.testing.assert_allclose(x1, x2, atol=1e-10)
    np.testing.assert_allclose(x1, x3, atol=1e-10)
    np.testing.assert_allclose(x1, x4, atol=1e-10)


def test_solution_is_zero_outside_reach(factor):
    b = sparse_rhs(factor.n, nnz=1, seed=8)
    ins = _inspect(factor, b)
    x = trisolve_decoupled(factor, b, ins.reach)
    outside = np.setdiff1d(np.arange(factor.n), ins.reach_sorted)
    np.testing.assert_allclose(x[outside], 0.0)


def test_input_validation_non_square():
    rect = CSCMatrix.from_dense(np.tril(np.ones((3, 2))))
    with pytest.raises(ValueError):
        trisolve_naive(rect, np.ones(2))


def test_input_validation_not_lower_triangular():
    U = CSCMatrix.from_dense(np.triu(np.ones((3, 3))))
    with pytest.raises(ValueError):
        trisolve_naive(U, np.ones(3))


def test_input_validation_rhs_shape(lower_factors):
    L = lower_factors["fem"]
    with pytest.raises(ValueError):
        trisolve_naive(L, np.ones(L.n + 1))


def test_missing_diagonal_detected():
    dense = np.array([[0.0, 0.0], [1.0, 1.0]])
    L = CSCMatrix.from_dense(dense)
    with pytest.raises(ValueError):
        trisolve_naive(L, np.array([1.0, 1.0]))


def test_supernodal_partition_size_mismatch(lower_factors):
    L = lower_factors["fem"]
    other = TriangularSolveInspector().inspect(lower_factors["banded"]).supernodes
    if other.n_columns != L.n:
        with pytest.raises(ValueError):
            trisolve_supernodal(L, np.ones(L.n), other)


def test_identity_solve():
    L = CSCMatrix.identity(4)
    b = np.array([1.0, 2.0, 3.0, 4.0])
    np.testing.assert_allclose(trisolve_naive(L, b), b)
    np.testing.assert_allclose(trisolve_library(L, b), b)
