"""The unified observability layer: spans, registry, exporters, wire verb.

What is proven here:

* span nesting and trace identity (parent/child/sibling relationships),
* the zero-cost-when-disabled contract (shared no-op object, nothing
  recorded, ``capture()`` returning None),
* explicit cross-thread propagation — both directly (``capture``/``attach``)
  and through the two production pool boundaries
  (:class:`~repro.runtime.engine.BatchExecutor` workers and the service
  coalescer's dispatcher thread),
* exporter determinism (snapshot / Prometheus text / Chrome trace) and the
  Fig. 8/9 amortization breakdown arithmetic,
* the four legacy stats surfaces appearing through pull-mode collectors,
* the service's ``metrics`` wire verb end to end, and
* per-wavefront-level timings read out of a wavefront-compiled C kernel.

Every test that enables tracing goes through the ``tracing`` fixture, which
restores the disabled default on exit — tracing state is process-global.
"""

import json
import threading

import numpy as np
import pytest

from repro import observe
from repro.compiler.codegen.c_backend import c_compiler_available
from repro.observe import trace as observe_trace
from repro.observe.registry import (
    MetricsRegistry,
    Reservoir,
    get_registry,
    percentile,
)
from repro.sparse.generators import laplacian_2d

needs_cc = pytest.mark.skipif(
    not (c_compiler_available("cc") or c_compiler_available("gcc")),
    reason="no C compiler available",
)


@pytest.fixture()
def tracing():
    """Enable tracing for one test; restore the disabled default afterwards."""
    observe.enable()
    observe.reset()
    yield observe.get_tracer()
    observe.disable()
    observe.reset()


def _span_by_name(tracer, name):
    matches = [sp for sp in tracer.spans() if sp.name == name]
    assert matches, f"no span named {name!r} recorded"
    return matches[-1]


# --------------------------------------------------------------------------- #
# Span mechanics
# --------------------------------------------------------------------------- #
class TestSpans:
    def test_nesting_records_parent_and_trace(self, tracing):
        with observe.span("outer") as outer:
            with observe.span("inner"):
                pass
        inner = _span_by_name(tracing, "inner")
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        assert _span_by_name(tracing, "outer").parent_id is None

    def test_sibling_roots_get_distinct_traces(self, tracing):
        with observe.span("first"):
            pass
        with observe.span("second"):
            pass
        first = _span_by_name(tracing, "first")
        second = _span_by_name(tracing, "second")
        assert first.trace_id != second.trace_id

    def test_duration_and_attrs(self, tracing):
        with observe.span("timed", kernel="cholesky") as sp:
            sp.set(extra=3)
        recorded = _span_by_name(tracing, "timed")
        assert recorded.duration >= 0.0
        assert recorded.attrs == {"kernel": "cholesky", "extra": 3}

    def test_exception_marks_span_and_propagates(self, tracing):
        with pytest.raises(ValueError):
            with observe.span("failing"):
                raise ValueError("boom")
        assert _span_by_name(tracing, "failing").attrs["error"] == "ValueError"

    def test_disabled_is_shared_noop(self):
        assert not observe.enabled()
        a = observe.span("anything", key="value")
        b = observe.span("other")
        assert a is b  # one shared object, no allocation per call
        with a as sp:
            assert sp.set(x=1) is sp
        assert observe.capture() is None
        assert len(observe.get_tracer()) == 0

    def test_enable_disable_roundtrip(self):
        assert not observe.enabled()
        observe.enable()
        try:
            assert observe.enabled()
            with observe.span("while-enabled"):
                pass
            assert len(observe.get_tracer()) == 1
        finally:
            observe.disable()
            observe.reset()
        assert not observe.enabled()

    def test_span_counters_accumulate(self, tracing):
        before = observe.phase_totals().get("counted", {"calls": 0})["calls"]
        for _ in range(3):
            with observe.span("counted"):
                pass
        totals = observe.phase_totals()["counted"]
        assert totals["calls"] == before + 3
        assert totals["seconds"] >= 0.0


# --------------------------------------------------------------------------- #
# Cross-thread propagation
# --------------------------------------------------------------------------- #
class TestThreadPropagation:
    def test_capture_attach_joins_trace(self, tracing):
        worker_ids = {}

        def worker(ctx):
            with observe.attach(ctx):
                with observe.span("worker-side") as sp:
                    worker_ids["trace"] = sp.trace_id
                    worker_ids["parent"] = sp.parent_id

        with observe.span("submitter") as outer:
            t = threading.Thread(target=worker, args=(observe.capture(),))
            t.start()
            t.join()
        assert worker_ids["trace"] == outer.trace_id
        assert worker_ids["parent"] == outer.span_id

    def test_attach_none_is_noop(self, tracing):
        with observe.attach(None):
            with observe.span("orphan") as sp:
                assert sp.parent_id is None

    def test_batch_executor_workers_join_the_trace(self, tracing):
        from repro.compiler.cache import ArtifactCache
        from repro.compiler.options import SympilerOptions
        from repro.compiler.sympiler import Sympiler
        from repro.runtime.engine import BatchExecutor

        A = laplacian_2d(6, shift=0.1)
        sym = Sympiler(SympilerOptions(backend="python"), cache=ArtifactCache())
        artifact = sym.compile("cholesky", A)
        executor = BatchExecutor(artifact, num_threads=2)

        def traced_item(i):
            with observe.span("batch-item"):
                return i * 2

        with observe.span("batch-submit") as outer:
            result = executor.map(traced_item, [1, 2, 3], strategy="threads")
        assert result.results == [2, 4, 6]
        items = [sp for sp in tracing.spans() if sp.name == "batch-item"]
        assert len(items) == 3
        assert all(sp.trace_id == outer.trace_id for sp in items)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_labeled_counters_render_deterministically(self):
        reg = MetricsRegistry()
        reg.counter("solves", kernel="cholesky").inc()
        reg.counter("solves", kernel="cholesky").inc()
        reg.counter("solves", kernel="lu").inc()
        snap = reg.snapshot()
        assert snap["counters"]['solves{kernel="cholesky"}'] == 2.0
        assert snap["counters"]['solves{kernel="lu"}'] == 1.0

    def test_one_name_one_kind(self):
        reg = MetricsRegistry()
        reg.counter("latency")
        with pytest.raises(TypeError):
            reg.gauge("latency")

    def test_histogram_buckets_are_cumulative_in_prometheus(self):
        reg = MetricsRegistry()
        h = reg.histogram("dur", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = reg.to_prometheus(prefix="t")
        assert 't_dur_bucket{le="0.1"} 1' in text
        assert 't_dur_bucket{le="1"} 2' in text
        assert 't_dur_bucket{le="+Inf"} 3' in text
        assert "t_dur_count 3" in text

    def test_reservoir_summary_is_one_consistent_copy(self):
        res = Reservoir(maxlen=16)
        for v in range(1, 11):
            res.observe(float(v))
        summary = res.summary(qs=(50.0, 95.0))
        assert summary["count"] == 10
        assert summary["mean_seconds"] == pytest.approx(5.5)
        assert summary["p50_seconds"] <= summary["p95_seconds"]
        # Sliding window: the count keeps the lifetime total.
        for v in range(100):
            res.observe(float(v))
        assert res.summary()["count"] == 110

    def test_percentile_reexported_from_service_metrics(self):
        from repro.service import metrics as service_metrics

        assert service_metrics.percentile is percentile
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)
        assert percentile([], 95.0) == 0.0

    def test_collector_names_autosuffix_and_unregister(self):
        reg = MetricsRegistry()
        first = reg.register_collector("svc", lambda: {"x": 1})
        second = reg.register_collector("svc", lambda: {"x": 2})
        assert (first, second) == ("svc", "svc_2")
        assert reg.collect() == {"svc": {"x": 1}, "svc_2": {"x": 2}}
        assert reg.unregister_collector("svc_2")
        assert reg.collector_names() == ["svc"]

    def test_raising_collector_never_breaks_a_scrape(self):
        reg = MetricsRegistry()

        def bad():
            raise RuntimeError("adapter broke")

        reg.register_collector("bad", bad)
        out = reg.collect()
        assert "RuntimeError" in out["bad"]["collector_error"]
        # Prometheus export skips the error string but still succeeds.
        text = reg.to_prometheus()
        assert text.endswith("\n")
        assert "adapter broke" not in text

    def test_default_collectors_installed(self):
        collectors = get_registry().collect()
        for name in ("artifact_cache", "disk_cache", "frontend"):
            assert name in collectors, f"default collector {name!r} missing"
        assert "compiles" in collectors["disk_cache"]
        assert "specializations" in collectors["frontend"]


# --------------------------------------------------------------------------- #
# Exporters
# --------------------------------------------------------------------------- #
class TestExporters:
    def test_snapshot_is_json_serialisable(self):
        doc = observe.snapshot()
        round_tripped = json.loads(json.dumps(doc))
        assert set(round_tripped) == {
            "counters", "gauges", "histograms", "reservoirs", "collectors",
        }

    def test_prometheus_text_is_deterministic(self):
        reg = MetricsRegistry()
        reg.counter("a", phase="x").inc(2)
        reg.gauge("b").set(1.5)
        reg.register_collector("cache", lambda: {"hits": 3, "name": "skipme"})
        text = reg.to_prometheus(prefix="repro")
        assert text == reg.to_prometheus(prefix="repro")
        assert "# TYPE repro_a counter" in text
        assert 'repro_a{phase="x"} 2' in text
        assert "repro_b 1.5" in text
        assert "repro_cache_hits 3" in text
        assert "skipme" not in text  # strings stay JSON-only

    def test_chrome_trace_loads_and_nests(self, tracing, tmp_path):
        with observe.span("parent", kernel="cholesky"):
            with observe.span("child"):
                pass
        path = tmp_path / "trace.json"
        observe.write_chrome_trace(path)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert len(events) == 2
        assert all(e["ph"] == "X" for e in events)
        child = next(e for e in events if e["name"] == "child")
        parent = next(e for e in events if e["name"] == "parent")
        assert child["args"]["parent_id"] is not None
        assert child["args"]["trace_id"] == parent["args"]["trace_id"]
        assert parent["args"]["kernel"] == "cholesky"

    def test_breakdown_groups_and_amortization(self, tracing):
        base = observe.breakdown()
        with observe.span("inspect"):
            pass
        with observe.span("numeric"):
            pass
        with observe.span("numeric"):
            pass
        data = observe.breakdown()
        groups = data["groups"]
        assert set(groups) == set(observe.PHASE_GROUPS)
        insp_calls = groups["inspection"]["calls"] - base["groups"]["inspection"]["calls"]
        num_calls = groups["numeric"]["calls"] - base["groups"]["numeric"]["calls"]
        assert (insp_calls, num_calls) == (1, 2)
        # symbolic = inspection + lowering + codegen + cc, never numeric.
        assert data["symbolic_seconds"] == pytest.approx(
            sum(groups[g]["seconds"] for g in ("inspection", "lowering", "codegen", "cc"))
        )
        rendered = observe.format_breakdown(data)
        assert "inspection" in rendered and "numeric" in rendered
        assert "symbolic" in rendered

    def test_parent_spans_never_double_count(self):
        # "compile" wraps inspect/lower/codegen and "schedule" nests inside
        # "inspect"; both must stay out of the groups so no second counts.
        grouped = {p for phases in observe.PHASE_GROUPS.values() for p in phases}
        assert "compile" not in grouped
        assert "schedule" not in grouped


# --------------------------------------------------------------------------- #
# Pipeline integration (python backend)
# --------------------------------------------------------------------------- #
class TestPipelineIntegration:
    def test_frontend_solve_traces_the_pipeline(self, tracing):
        import repro.compiler.sympiler as sympiler_module
        from repro.compiler.cache import ArtifactCache
        from repro.compiler.options import SympilerOptions
        from repro.frontend.specialized import SpecializedSolver

        A = laplacian_2d(8, shift=0.1)
        b = np.cos(np.arange(A.n, dtype=np.float64))
        shared_before = sympiler_module._SHARED_CACHE
        sympiler_module._SHARED_CACHE = ArtifactCache()
        try:
            front = SpecializedSolver(options=SympilerOptions(backend="python"))
            x_cold = front.solve(A, b)
            x_warm = front.solve(A, b)
        finally:
            sympiler_module._SHARED_CACHE = shared_before
        assert np.array_equal(x_cold, x_warm)
        names = {sp.name for sp in tracing.spans()}
        for expected in ("probe", "specialize", "compile", "inspect",
                         "codegen", "numeric"):
            assert expected in names, f"span {expected!r} missing from {names}"
        # The numeric span nests under the pipeline via the explicit
        # kernel/op attributes rather than positional guesswork.
        numeric = _span_by_name(tracing, "numeric")
        assert numeric.attrs["op"] in ("solve", "factorize")
        assert "fingerprint" in numeric.attrs

    def test_tracing_never_changes_results(self):
        from repro.compiler.cache import ArtifactCache
        from repro.compiler.options import SympilerOptions
        from repro.compiler.sympiler import Sympiler

        A = laplacian_2d(7, shift=0.1)
        sym = Sympiler(SympilerOptions(backend="python"), cache=ArtifactCache())
        chol = sym.compile("cholesky", A)
        plain = chol.factorize(A)
        observe.enable()
        try:
            traced = chol.factorize(A)
        finally:
            observe.disable()
            observe.reset()
        assert np.array_equal(plain.data, traced.data)


# --------------------------------------------------------------------------- #
# Service integration
# --------------------------------------------------------------------------- #
class TestServiceIntegration:
    def test_service_metrics_register_as_collectors(self):
        from repro.service.metrics import ServiceMetrics

        m1, m2 = ServiceMetrics(), ServiceMetrics()
        n1 = m1.register_collector()
        n2 = m2.register_collector()
        try:
            assert n1 != n2 and n2.startswith("service")
            assert m1.register_collector() == n1  # idempotent
            m1.incr("solves_ok", 5)
            snap = get_registry().collect()
            assert snap[n1]["counters"]["solves_ok"] == 5
        finally:
            m1.unregister_collector()
            m2.unregister_collector()
        names = get_registry().collector_names()
        assert n1 not in names and n2 not in names

    def test_latency_snapshot_quantiles_are_consistent(self):
        from repro.service.metrics import ServiceMetrics

        metrics = ServiceMetrics()
        for v in (0.001, 0.002, 0.003, 0.010):
            metrics.observe_latency(v)
        latency = metrics.snapshot()["latency"]
        assert latency["count"] == 4
        assert latency["p50_seconds"] <= latency["p95_seconds"]

    def test_dispatch_spans_join_submitter_traces(self, tracing):
        from repro.compiler.options import SympilerOptions
        from repro.service.session import SolverService

        A = laplacian_2d(8, shift=0.1)
        service = SolverService(
            options=SympilerOptions(backend="python"), window_seconds=0.0
        )
        try:
            handle = service.register_pattern(A)
            with observe.span("client-call") as outer:
                x = service.solve(
                    handle.handle_id,
                    A.data,
                    np.ones(A.n, dtype=np.float64),
                )
            assert np.isfinite(x).all()
        finally:
            service.close()
        dispatch = _span_by_name(tracing, "dispatch")
        assert dispatch.trace_id == outer.trace_id
        # The batch-level coalesce span lives on the dispatcher thread and
        # starts its own trace (no single submitter owns a batch).
        coalesce = _span_by_name(tracing, "coalesce")
        assert coalesce.thread == "repro-service-coalescer"
        assert coalesce.trace_id != outer.trace_id

    def test_metrics_wire_verb_serves_prometheus(self):
        from repro.compiler.options import SympilerOptions
        from repro.service.client import ServiceClient
        from repro.service.session import SolverService
        from repro.service.wire import serve_background

        A = laplacian_2d(8, shift=0.1)
        service = SolverService(options=SympilerOptions(backend="python"))
        server, thread = serve_background(service, host="127.0.0.1", port=0)
        try:
            with ServiceClient(server.server_address) as client:
                handle = client.register_pattern(A)
                client.solve(handle, A.data, np.ones(A.n, dtype=np.float64))
                text = client.metrics_text()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)
        assert "# TYPE" in text
        solve_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_service") and "solves_ok" in line
        ]
        assert solve_lines, f"no service solve counter in:\n{text}"
        assert all(float(line.rsplit(None, 1)[1]) >= 1 for line in solve_lines)


# --------------------------------------------------------------------------- #
# CLI and probe surfaces
# --------------------------------------------------------------------------- #
class TestCliSurfaces:
    def test_observe_main_prints_breakdown(self, capsys, tmp_path, monkeypatch):
        from repro.observe.__main__ import main

        monkeypatch.setenv("REPRO_SYMPILER_CACHE", str(tmp_path / "cache"))
        trace_path = tmp_path / "trace.json"
        json_path = tmp_path / "snap.json"
        rc = main([
            "--grid", "8", "--solves", "3", "--backend", "python",
            "--trace-out", str(trace_path), "--json", str(json_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "phase" in out and "numeric" in out and "symbolic" in out
        assert not observe.enabled()  # the CLI restores the disabled default
        trace_doc = json.loads(trace_path.read_text())
        assert trace_doc["traceEvents"], "trace should carry events"
        doc = json.loads(json_path.read_text())
        assert doc["breakdown"]["numeric_seconds"] > 0.0
        assert doc["workload"]["solves"] == 3

    def test_cache_probe_json_embeds_registry(self, capsys, tmp_path, monkeypatch):
        from repro.compiler.cache_probe import main

        monkeypatch.setenv("REPRO_SYMPILER_CACHE", str(tmp_path / "cache"))
        rc = main(["--backend", "python", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        collectors = report["observe"]["collectors"]
        for name in ("artifact_cache", "disk_cache", "frontend"):
            assert name in collectors
        assert collectors["disk_cache"]["py_writes"] == report["py_writes"]


# --------------------------------------------------------------------------- #
# Wavefront per-level timing (C backend)
# --------------------------------------------------------------------------- #
@needs_cc
class TestWavefrontLevelTiming:
    def test_numeric_span_carries_level_seconds(self, tmp_path, monkeypatch):
        from repro.compiler.cache import ArtifactCache
        from repro.compiler.options import SympilerOptions
        from repro.compiler.sympiler import Sympiler
        from repro.sparse.ordering import ordering_by_name

        monkeypatch.setenv("REPRO_SYMPILER_CACHE", str(tmp_path))
        grid = laplacian_2d(12, shift=0.1)
        A = ordering_by_name("mindeg")(grid).symmetric_permute(grid)
        compiler = "cc" if c_compiler_available("cc") else "gcc"
        options = SympilerOptions(
            backend="c",
            c_compiler=compiler,
            enable_vs_block=False,
            parallel="wavefront",
        )
        sym = Sympiler(options, cache=ArtifactCache())
        chol = sym.compile("cholesky", A)
        assert chol.parallel_mode == "wavefront"

        serial_bits = chol.factorize_arrays(A.indptr, A.indices, A.data)
        observe.enable(wavefront_levels=True)
        try:
            chol.factorize_arrays(A.indptr, A.indices, A.data, num_threads=2)
            tracer = observe.get_tracer()
            numeric = [sp for sp in tracer.spans() if sp.name == "numeric"]
            assert numeric, "no numeric span recorded"
            levels = numeric[-1].attrs.get("wf_level_seconds")
            assert levels is not None, "wavefront level timings missing"
            n_levels = chol.schedule.n_levels
            assert len(levels) == n_levels
            assert all(v >= 0.0 for v in levels)
            assert sum(levels) > 0.0
            # Profiling never perturbs the numerics: bitwise vs untraced.
            traced_bits = chol.factorize_arrays(
                A.indptr, A.indices, A.data, num_threads=2
            )
        finally:
            observe.disable()
            observe.reset()
        s = serial_bits if not isinstance(serial_bits, tuple) else serial_bits[0]
        t = traced_bits if not isinstance(traced_bits, tuple) else traced_bits[0]
        assert np.array_equal(np.asarray(s), np.asarray(t))
