"""Tests for the symbolic-inspector framework."""

import numpy as np
import pytest

from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import sparse_rhs
from repro.symbolic.fill_pattern import cholesky_pattern
from repro.symbolic.inspector import (
    CholeskyInspector,
    InspectionSet,
    TriangularSolveInspector,
    inspector_for_method,
    verify_cholesky_pattern_consistency,
)
from repro.symbolic.reach import reach_set


class TestTriangularSolveInspector:
    def test_reach_set_matches_direct_computation(self, lower_factors):
        L = lower_factors["fem"]
        b = sparse_rhs(L.n, nnz=4, seed=1)
        rhs = np.nonzero(b)[0]
        result = TriangularSolveInspector().inspect(L, rhs_pattern=rhs)
        np.testing.assert_array_equal(result.reach, reach_set(L, rhs))
        np.testing.assert_array_equal(result.reach_sorted, np.sort(result.reach))
        assert result.reach_size == result.reach.size

    def test_dense_rhs_defaults_to_all_columns(self, lower_factors):
        L = lower_factors["banded"]
        result = TriangularSolveInspector().inspect(L)
        assert result.reach_size == L.n

    def test_inspection_sets_table1(self, lower_factors):
        L = lower_factors["block"]
        result = TriangularSolveInspector().inspect(L, rhs_pattern=[0])
        prune = result.prune_set()
        block = result.block_set()
        assert isinstance(prune, InspectionSet)
        assert prune.strategy == "dfs"
        assert prune.graph.startswith("DG_L")
        assert block.strategy == "node-equivalence"
        assert block.payload.n_columns == L.n

    def test_symbolic_time_recorded(self, lower_factors):
        result = TriangularSolveInspector().inspect(lower_factors["circuit"], rhs_pattern=[1])
        assert result.symbolic_seconds >= 0.0

    def test_rejects_non_lower_triangular(self):
        A = CSCMatrix.from_dense(np.array([[1.0, 2.0], [3.0, 4.0]]))
        with pytest.raises(ValueError):
            TriangularSolveInspector().inspect(A)

    def test_rejects_out_of_range_rhs(self, lower_factors):
        L = lower_factors["fem"]
        with pytest.raises(IndexError):
            TriangularSolveInspector().inspect(L, rhs_pattern=[L.n + 5])

    def test_rejects_unknown_kwargs(self, lower_factors):
        with pytest.raises(TypeError):
            TriangularSolveInspector().inspect(lower_factors["fem"], bogus=1)


class TestCholeskyInspector:
    def test_factor_pattern_matches_reference(self, spd_matrix):
        assert verify_cholesky_pattern_consistency(spd_matrix)

    def test_result_fields_are_consistent(self, spd_matrix):
        result = CholeskyInspector().inspect(spd_matrix)
        assert result.n == spd_matrix.n
        assert result.factor_nnz == int(result.l_indptr[-1])
        np.testing.assert_array_equal(result.l_col_counts, np.diff(result.l_indptr))
        assert len(result.row_patterns) == result.n
        assert result.supernodes.n_columns == result.n
        assert result.average_column_count == pytest.approx(result.l_col_counts.mean())

    def test_row_patterns_match_column_pattern(self, spd_matrices):
        A = spd_matrices["laplacian_2d"]
        result = CholeskyInspector().inspect(A)
        indptr, indices = cholesky_pattern(A, result.parent)
        np.testing.assert_array_equal(indptr, result.l_indptr)
        np.testing.assert_array_equal(indices, result.l_indices)

    def test_l_pattern_matrix(self, spd_matrices):
        A = spd_matrices["block"]
        result = CholeskyInspector().inspect(A)
        L0 = result.l_pattern_matrix()
        assert L0.nnz == result.factor_nnz
        assert np.all(L0.data == 0.0)
        assert L0.is_lower_triangular()

    def test_inspection_sets_table1(self, spd_matrices):
        result = CholeskyInspector().inspect(spd_matrices["fem"])
        prune = result.prune_set()
        block = result.block_set()
        assert prune.strategy == "up-traversal"
        assert "etree" in prune.graph
        assert block.name == "block-set"
        assert block.payload.n_supernodes >= 1

    def test_max_supernode_width_honoured(self, spd_matrices):
        A = spd_matrices["block"]
        result = CholeskyInspector().inspect(A, max_supernode_width=2)
        assert result.supernodes.max_size() <= 2

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            CholeskyInspector().inspect(CSCMatrix.from_dense(np.ones((2, 3))))

    def test_rejects_unknown_kwargs(self, spd_matrices):
        with pytest.raises(TypeError):
            CholeskyInspector().inspect(spd_matrices["fem"], bogus=True)


def test_inspector_for_method_registry():
    assert isinstance(inspector_for_method("triangular-solve"), TriangularSolveInspector)
    assert isinstance(inspector_for_method("trisolve"), TriangularSolveInspector)
    assert isinstance(inspector_for_method("cholesky"), CholeskyInspector)
    assert inspector_for_method("lu").method == "lu"
    with pytest.raises(ValueError):
        inspector_for_method("qr")
