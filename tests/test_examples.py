"""Smoke tests: every example script runs successfully end-to-end."""

import os
import subprocess
import sys

import pytest

_EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples")
_SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _run(script: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )


@pytest.mark.parametrize(
    "script, expected",
    [
        ("quickstart.py", "triangular solve"),
        ("power_grid_newton.py", "converged: True"),
        ("preconditioned_cg.py", "IC(0)-preconditioned"),
        ("fem_refactorization.py", "per-step numeric speedup"),
        ("inspect_codegen.py", "Generated Python kernel"),
        ("solver_service.py", "service stopped cleanly"),
        ("scipy_drop_in.py", "scipy drop-in front end OK"),
    ],
)
def test_example_runs(script, expected):
    result = _run(script)
    assert result.returncode == 0, result.stderr
    assert expected in result.stdout
