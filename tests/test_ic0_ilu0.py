"""End-to-end tests of the IC(0)/ILU(0) preconditioner kernels.

Covers the symbolic layer (no-fill inspections + schedules), the reference
kernels, both code-generation backends, the stacked batch runtime and the
artifact protocol — the whole registry extension of the incomplete kernels.
"""

import numpy as np
import pytest

from repro.compiler.ast import IncompleteFactorLoop, walk
from repro.compiler.cache import ArtifactCache
from repro.compiler.codegen.c_backend import c_compiler_available
from repro.compiler.options import SympilerOptions
from repro.compiler.sympiler import Sympiler
from repro.kernels.incomplete import ic0_left_looking, ilu0_left_looking
from repro.runtime.engine import BatchExecutor
from repro.runtime.levels import dependency_graph_from_column_deps
from repro.solvers.cg import incomplete_cholesky_ic0
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import (
    banded_spd,
    fem_stencil_2d,
    laplacian_2d,
    unsymmetric_diag_dominant,
)
from repro.sparse.utils import lower_triangle, upper_triangle
from repro.symbolic.inspector import (
    IC0InspectionResult,
    IC0Inspector,
    ILU0InspectionResult,
    ILU0Inspector,
)

needs_cc = pytest.mark.skipif(
    not (c_compiler_available("cc") or c_compiler_available("gcc")),
    reason="no C compiler available",
)


def _c_options(**overrides):
    compiler = "cc" if c_compiler_available("cc") else "gcc"
    return SympilerOptions(backend="c", c_compiler=compiler, **overrides)


def _fresh_sympiler(options=None):
    return Sympiler(options, cache=ArtifactCache())


def _spd(n_side=10, shift=0.1):
    return laplacian_2d(n_side, shift=shift)


def _jacobian(n=48, seed=7):
    return unsymmetric_diag_dominant(n, seed=seed)


def _pattern_residual(dense_factor_product, A):
    """Max |(factor product - A)| over the stored entries of A."""
    dense_A = A.to_dense()
    mask = np.zeros_like(dense_A, dtype=bool)
    for j in range(A.n):
        mask[A.col_rows(j), j] = True
    return float(np.abs((dense_factor_product - dense_A)[mask]).max())


class TestSymbolicIC0:
    def test_factor_pattern_is_tril_of_a(self):
        A = _spd()
        insp = IC0Inspector().inspect(A)
        assert isinstance(insp, IC0InspectionResult)
        tril = lower_triangle(A)
        np.testing.assert_array_equal(insp.l_indptr, tril.indptr)
        np.testing.assert_array_equal(insp.l_indices, tril.indices)
        assert insp.factor_nnz == tril.nnz

    def test_row_patterns_are_update_sources(self):
        A = fem_stencil_2d(8, shift=0.25)
        insp = IC0Inspector().inspect(A)
        dense = A.to_dense() != 0
        for j in range(A.n):
            expected = [k for k in range(j) if dense[j, k]]
            np.testing.assert_array_equal(insp.row_patterns[j], expected)

    def test_schedule_is_valid_wavefront_partition(self):
        A = _spd(9)
        insp = IC0Inspector().inspect(A)
        dg = dependency_graph_from_column_deps(insp.n, insp.row_patterns)
        assert insp.schedule.validate_against(dg)
        assert insp.schedule.n_scheduled == A.n

    def test_missing_diagonal_raises(self):
        dense = np.array([[2.0, 0.0], [1.0, 0.0]])
        dense[1, 1] = 0.0  # structurally absent after from_dense
        A = CSCMatrix.from_dense(dense)
        with pytest.raises(ValueError, match="diagonal"):
            IC0Inspector().inspect(A)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            IC0Inspector().inspect(CSCMatrix.from_dense(np.ones((2, 3))))


class TestSymbolicILU0:
    def test_factor_patterns_are_triangles_of_a(self):
        A = _jacobian()
        insp = ILU0Inspector().inspect(A)
        assert isinstance(insp, ILU0InspectionResult)
        up = upper_triangle(A)
        np.testing.assert_array_equal(insp.u_indptr, up.indptr)
        np.testing.assert_array_equal(insp.u_indices, up.indices)
        # L: explicit unit diagonal first, then the strict lower rows of A.
        np.testing.assert_array_equal(
            insp.l_indices[insp.l_indptr[:-1]], np.arange(A.n)
        )
        strict = lower_triangle(A, strict=True)
        assert insp.l_nnz == strict.nnz + A.n
        assert insp.factor_nnz == insp.l_nnz + insp.u_nnz

    def test_diag_last_in_u_and_schedule_valid(self):
        A = _jacobian(40, seed=9)
        insp = ILU0Inspector().inspect(A)
        np.testing.assert_array_equal(
            insp.u_indices[insp.u_indptr[1:] - 1], np.arange(A.n)
        )
        deps = [
            insp.u_indices[insp.u_indptr[j] : insp.u_indptr[j + 1] - 1]
            for j in range(A.n)
        ]
        dg = dependency_graph_from_column_deps(insp.n, deps)
        assert insp.schedule.validate_against(dg)

    def test_missing_diagonal_raises(self):
        A = CSCMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(ValueError, match="diagonal"):
            ILU0Inspector().inspect(A)


class TestReferenceKernels:
    def test_ic0_matches_interpreted_bitwise(self):
        for A in (_spd(), fem_stencil_2d(9, shift=0.25), banded_spd(30, 2, seed=4)):
            L = ic0_left_looking(A)
            L_ref = incomplete_cholesky_ic0(A)
            assert np.array_equal(L.data, L_ref.data)

    def test_ic0_exact_on_pattern(self):
        A = _spd(11)
        L = ic0_left_looking(A).to_dense()
        assert _pattern_residual(L @ L.T, A) < 1e-12

    def test_ic0_equals_exact_cholesky_when_no_fill(self):
        # A banded SPD matrix with bandwidth 1 factors without fill.
        A = banded_spd(25, 1, seed=3)
        from repro.baselines.scipy_reference import reference_cholesky

        np.testing.assert_allclose(
            ic0_left_looking(A).to_dense(), reference_cholesky(A), atol=1e-9
        )

    def test_ilu0_exact_on_pattern_and_unit_diagonal(self):
        A = _jacobian(52, seed=11)
        fac = ilu0_left_looking(A)
        assert _pattern_residual(fac.L.to_dense() @ fac.U.to_dense(), A) < 1e-10
        np.testing.assert_allclose(fac.L.data[fac.L.indptr[:-1]], 1.0)
        assert fac.L.is_lower_triangular()
        assert fac.U.is_upper_triangular()

    def test_ilu0_equals_exact_lu_when_no_fill(self):
        # A tridiagonal-ish unsymmetric matrix: LU of a banded matrix with
        # dense band has no fill, so ILU(0) equals the complete LU.
        n = 20
        dense = np.diag(np.full(n, 4.0)) + np.diag(np.full(n - 1, -1.0), -1) + np.diag(
            np.full(n - 1, -2.0), 1
        )
        A = CSCMatrix.from_dense(dense)
        fac = ilu0_left_looking(A)
        from repro.kernels.lu import lu_left_looking

        ref = lu_left_looking(A)
        np.testing.assert_allclose(fac.L.to_dense(), ref.L.to_dense(), atol=1e-12)
        np.testing.assert_allclose(fac.U.to_dense(), ref.U.to_dense(), atol=1e-12)

    def test_ic0_breakdown_raises(self):
        dense = np.array([[1.0, 2.0], [2.0, 1.0]])  # not SPD: second pivot < 0
        A = CSCMatrix.from_dense(dense)
        with pytest.raises(ValueError, match="IC\\(0\\) breakdown"):
            ic0_left_looking(A)

    def test_ilu0_zero_pivot_raises(self):
        dense = np.array([[1.0, 1.0], [1.0, 1.0]])  # second pivot cancels to 0
        A = CSCMatrix.from_dense(dense)
        with pytest.raises(ValueError, match="ILU\\(0\\) breakdown"):
            ilu0_left_looking(A)


class TestCompiledIC0Python:
    def test_bitwise_matches_interpreted(self):
        sym = _fresh_sympiler()
        for A in (_spd(), fem_stencil_2d(9, shift=0.25)):
            compiled = sym.compile("ic0", A)
            L = compiled.factorize(A)
            L_ref = incomplete_cholesky_ic0(A)
            assert np.array_equal(L.data, L_ref.data)
            assert L.pattern_equal(lower_triangle(A))

    def test_kernel_is_incomplete_factor_loop(self):
        compiled = _fresh_sympiler().compile("ic0", _spd(6))
        loops = [
            node
            for node in walk(compiled.kernel.body)
            if isinstance(node, IncompleteFactorLoop)
        ]
        assert len(loops) == 1 and loops[0].factor_kind == "ic0"
        # The scatter arrays are embedded constants — no runtime pattern work.
        for name in ("a_lower_pos", "prune_ptr", "mult_pos", "l_scat_ptr"):
            assert name in compiled.constants

    def test_vi_prune_is_forced_and_vs_block_defers(self):
        compiled = _fresh_sympiler().compile(
            "ic0", _spd(6), options=SympilerOptions.baseline()
        )
        assert compiled.decisions.get("vi-prune-forced") is True
        assert "vi-prune" in compiled.applied_transformations
        decision = _fresh_sympiler().compile("ic0", _spd(7)).decisions.get("vs-block")
        assert decision is not None and decision["factor_kind"] == "ic0"
        assert "deferred" in decision

    def test_breakdown_message_matches_interpreted(self):
        dense = np.array([[1.0, 2.0], [2.0, 1.0]])
        A = CSCMatrix.from_dense(dense)
        compiled = _fresh_sympiler().compile("ic0", A)
        with pytest.raises(ValueError, match="non-positive pivot at column 1"):
            compiled.factorize(A)

    def test_refactorization_with_new_values(self):
        A = _spd(8)
        compiled = _fresh_sympiler().compile("ic0", A)
        L1 = compiled.factorize(A)
        A2 = A.with_values(A.data * 4.0)
        L2 = compiled.factorize(A2)
        np.testing.assert_allclose(L2.data, 2.0 * L1.data, atol=1e-12)

    def test_aliases_resolve(self):
        sym = _fresh_sympiler()
        A = _spd(5)
        assert sym.compile("incomplete-cholesky", A) is sym.compile("ic0", A)


class TestCompiledILU0Python:
    def test_matches_reference_bitwise(self):
        sym = _fresh_sympiler()
        for seed in (10, 11):
            A = _jacobian(44, seed=seed)
            fac = sym.compile("ilu0", A).factorize(A)
            ref = ilu0_left_looking(A)
            assert np.array_equal(fac.L.data, ref.L.data)
            assert np.array_equal(fac.U.data, ref.U.data)

    def test_exact_on_pattern(self):
        A = _jacobian(56, seed=12)
        fac = _fresh_sympiler().compile("ilu0", A).factorize(A)
        assert _pattern_residual(fac.L.to_dense() @ fac.U.to_dense(), A) < 1e-10

    def test_zero_pivot_raises(self):
        A = CSCMatrix.from_dense(np.array([[1.0, 1.0], [1.0, 1.0]]))
        compiled = _fresh_sympiler().compile("ilu0", A)
        with pytest.raises(ValueError, match="zero pivot"):
            compiled.factorize(A)

    def test_u_pattern_property_and_alias(self):
        sym = _fresh_sympiler()
        A = _jacobian(30, seed=13)
        compiled = sym.compile("incomplete-lu", A)
        assert compiled.u_pattern.pattern_equal(upper_triangle(A))
        assert sym.compile("ilu0", A) is compiled


@needs_cc
class TestCompiledIncompleteC:
    def test_ic0_close_to_python_backend(self):
        A = _spd(10)
        sym = _fresh_sympiler()
        Lc = sym.compile("ic0", A, options=_c_options()).factorize(A)
        Lp = sym.compile("ic0", A, options=SympilerOptions()).factorize(A)
        np.testing.assert_allclose(Lc.data, Lp.data, atol=1e-12)

    def test_ilu0_close_to_python_backend(self):
        A = _jacobian(48, seed=20)
        sym = _fresh_sympiler()
        fc = sym.compile("ilu0", A, options=_c_options()).factorize(A)
        fp = sym.compile("ilu0", A, options=SympilerOptions()).factorize(A)
        np.testing.assert_allclose(fc.L.data, fp.L.data, atol=1e-12)
        np.testing.assert_allclose(fc.U.data, fp.U.data, atol=1e-12)

    def test_c_breakdown_status_becomes_value_error(self):
        A = CSCMatrix.from_dense(np.array([[1.0, 2.0], [2.0, 1.0]]))
        compiled = _fresh_sympiler().compile("ic0", A, options=_c_options())
        with pytest.raises(ValueError, match="IC\\(0\\) breakdown"):
            compiled.factorize(A)


class TestStackedBatchIncomplete:
    def test_ic0_stacked_bitwise_and_mode(self):
        A = _spd(9)
        artifact = _fresh_sympiler().compile("ic0", A)
        executor = BatchExecutor(artifact)
        assert executor.mode == "stacked"
        values = [A.data * (1.0 + 0.01 * s) for s in range(6)]
        result = executor.factorize_batch(A.indptr, A.indices, values)
        assert result.mode == "stacked" and result.ok
        for ax, out in zip(values, result.results):
            seq = artifact.factorize_arrays(A.indptr, A.indices, ax)
            assert np.array_equal(seq, out)

    def test_ilu0_stacked_bitwise(self):
        A = _jacobian(36, seed=21)
        artifact = _fresh_sympiler().compile("ilu0", A)
        executor = BatchExecutor(artifact)
        values = [A.data * (1.0 + 0.01 * s) for s in range(5)]
        result = executor.factorize_batch(A.indptr, A.indices, values)
        assert result.mode == "stacked" and result.ok
        for ax, out in zip(values, result.results):
            lx, ux = artifact.factorize_arrays(A.indptr, A.indices, ax)
            assert np.array_equal(lx, out[0]) and np.array_equal(ux, out[1])

    def test_ic0_batch_isolates_breakdown(self):
        A = _spd(6)
        artifact = _fresh_sympiler().compile("ic0", A)
        executor = BatchExecutor(artifact)
        good = A.data.copy()
        bad = A.data.copy()
        bad[A.indptr[0]] = -5.0  # non-positive first pivot
        result = executor.factorize_batch(A.indptr, A.indices, [good, bad, good])
        assert len(result.errors) == 1 and result.errors[0].index == 1
        assert "IC(0) breakdown" in str(result.errors[0].error)
        assert result.results[1] is None
        assert np.array_equal(
            result.results[0], artifact.factorize_arrays(A.indptr, A.indices, good)
        )


class TestArtifactsAndCache:
    def test_recompile_is_cache_hit_and_schedule_cached(self):
        sym = _fresh_sympiler()
        A = _spd(8)
        first = sym.compile("ic0", A)
        hits = sym.cache_stats.hits
        assert sym.compile("ic0", A) is first
        assert sym.cache_stats.hits == hits + 1
        assert first.schedule.n_scheduled == A.n

    def test_pattern_mismatch_detected(self):
        from repro.compiler.artifacts import PatternMismatchError

        sym = _fresh_sympiler()
        compiled = sym.compile("ic0", _spd(8))
        other = _spd(9)
        with pytest.raises(PatternMismatchError):
            compiled.factorize(other, check_pattern=True)

    def test_is_incomplete_flags(self):
        from repro.compiler.artifacts import (
            SympiledCholesky,
            SympiledIC0,
            SympiledILU0,
            SympiledLU,
        )

        assert SympiledIC0.is_incomplete and SympiledILU0.is_incomplete
        assert not SympiledCholesky.is_incomplete and not SympiledLU.is_incomplete

    def test_generated_source_is_numeric_only(self):
        compiled = _fresh_sympiler().compile("ic0", _spd(6))
        assert "Sympiler-generated ic0 kernel" in compiled.source
        assert "searchsorted" not in compiled.source  # no runtime pattern work
        ilu = _fresh_sympiler().compile("ilu0", _jacobian(20, seed=30))
        for name in ("u_indptr", "u_scat_ptr", "_C_a_upper_pos", "_C_mult_pos"):
            assert name in ilu.constants
