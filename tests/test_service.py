"""Serving-layer tests: registration, coalescing, admission, eviction, metrics."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.compiler.codegen.c_backend import disk_cache_stats
from repro.compiler.options import SympilerOptions
from repro.service import (
    PatternEvictedError,
    ServiceClosedError,
    ServiceOverloadedError,
    SolverService,
)
from repro.service.coalescer import Coalescer
from repro.service.metrics import ServiceMetrics, percentile
from repro.solvers.linear_solver import SparseLinearSolver
from repro.sparse.generators import fem_stencil_2d, laplacian_2d


def _service(**kwargs):
    kwargs.setdefault("options", SympilerOptions(enable_vs_block=False))
    return SolverService(**kwargs)


class TestRegistration:
    def test_register_returns_metadata(self):
        A = laplacian_2d(8, shift=0.1)
        with _service() as svc:
            handle = svc.register_pattern(A)
            assert handle.kernel == "cholesky"
            assert handle.n == A.n and handle.nnz == A.nnz
            assert handle.factor_nnz > 0
            assert handle.schedule_levels > 0
            assert len(handle.fingerprint) == 16
            assert len(handle.handle_id) == 16

    def test_repeat_registration_shares_the_entry(self):
        A = laplacian_2d(8, shift=0.1)
        with _service() as svc:
            first = svc.register_pattern(A)
            second = svc.register_pattern(A)
            assert first.handle_id == second.handle_id
            assert svc.metrics.count("registrations") == 2
            assert svc.metrics.count("compile_warm") >= 1

    def test_distinct_options_register_distinct_entries(self):
        A = laplacian_2d(8, shift=0.1)
        with _service() as svc:
            first = svc.register_pattern(A)
            second = svc.register_pattern(
                A, options=SympilerOptions(enable_vs_block=False, enable_vi_prune=False)
            )
            assert first.handle_id != second.handle_id

    def test_concurrent_registration_collapses_to_one_compile(self):
        """Racing registrations of one pattern share one entry and artifacts."""
        A = fem_stencil_2d(8, shift=0.3)
        with _service() as svc:
            barrier = threading.Barrier(4)
            handles = [None] * 4
            errors = []

            def register(i):
                try:
                    barrier.wait(timeout=10)
                    handles[i] = svc.register_pattern(A)
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(exc)

            threads = [threading.Thread(target=register, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not errors
            assert all(h is not None for h in handles)
            assert len({h.handle_id for h in handles}) == 1
            # One build: exactly one cold registration, the rest warm/coalesced.
            assert svc.metrics.count("compile_cold") <= 1
            assert svc.metrics.count("registrations") == 4

    def test_closed_service_rejects_registration(self):
        svc = _service()
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.register_pattern(laplacian_2d(6, shift=0.1))


class TestSolve:
    def test_solve_matches_direct_solver(self):
        A = laplacian_2d(9, shift=0.1)
        with _service(coalesce=False) as svc:
            handle = svc.register_pattern(A)
            rhs = np.linspace(1.0, 2.0, A.n)
            x = svc.solve(handle, A.data, rhs)
            ref = SparseLinearSolver(
                A, ordering="natural", options=SympilerOptions(enable_vs_block=False)
            )
            assert np.array_equal(x, ref.solve(rhs))

    def test_coalesced_batch_is_bitwise_identical_to_sequential(self):
        """The acceptance invariant: micro-batched results == sequential bits."""
        A = laplacian_2d(9, shift=0.1)
        scales = 1.0 + 0.05 * np.arange(10)
        rhs_list = [np.sin(np.arange(A.n) * 0.1 * (k + 1)) for k in range(10)]
        ref = SparseLinearSolver(
            A, ordering="natural", options=SympilerOptions(enable_vs_block=False)
        )
        expected = []
        for s, b in zip(scales, rhs_list):
            ref.factorize(A.with_values(A.data * s))
            expected.append(ref.solve(b))
        with _service(window_seconds=0.05, max_batch=4) as svc:
            handle = svc.register_pattern(A)
            futures = [
                svc.submit(handle, A.data * s, b) for s, b in zip(scales, rhs_list)
            ]
            results = [f.result(timeout=30) for f in futures]
        for k in range(10):
            assert np.array_equal(results[k], expected[k])
        # The dispatcher actually coalesced (some batch larger than one ran).
        assert svc.metrics.snapshot()["max_batch_size"] > 1

    def test_per_request_error_isolation(self):
        """A singular batch item fails alone; batchmates complete."""
        A = laplacian_2d(7, shift=0.1)
        bad = A.data.copy()
        bad[:] = 0.0  # zero matrix: the Cholesky kernel must reject it
        with _service(window_seconds=0.05, max_batch=8) as svc:
            handle = svc.register_pattern(A)
            rhs = np.ones(A.n)
            futures = [
                svc.submit(handle, A.data, rhs),
                svc.submit(handle, bad, rhs),
                svc.submit(handle, A.data * 2.0, rhs),
            ]
            good0 = futures[0].result(timeout=30)
            good2 = futures[2].result(timeout=30)
            with pytest.raises(Exception):
                futures[1].result(timeout=30)
        assert np.isfinite(good0).all() and np.isfinite(good2).all()
        assert np.allclose(good0, good2 * 2.0, atol=1e-8)
        assert svc.metrics.count("solves_failed") == 1
        assert svc.metrics.count("solves_ok") == 2

    def test_shape_validation_raises_synchronously(self):
        A = laplacian_2d(6, shift=0.1)
        with _service() as svc:
            handle = svc.register_pattern(A)
            with pytest.raises(ValueError):
                svc.submit(handle, A.data[:-1], np.ones(A.n))
            with pytest.raises(ValueError):
                svc.submit(handle, A.data, np.ones(A.n - 1))
            # Failed validation must not leak admission slots.
            assert svc.admission.in_flight == 0

    def test_zero_copy_out_row_is_the_result(self):
        """solve_with_factors(out=...) writes the solution into the buffer."""
        A = laplacian_2d(6, shift=0.1)
        ref = SparseLinearSolver(A, ordering="natural")
        rhs = np.ones(A.n)
        out = np.empty(A.n)
        x = ref.solve_with_factors(rhs, L=ref.L, d=ref.d, out=out)
        assert x is out
        assert np.array_equal(out, ref.solve(rhs))


class TestAdmission:
    def test_backpressure_rejects_with_retry_after(self):
        A = laplacian_2d(6, shift=0.1)
        with _service(
            window_seconds=60.0, max_batch=64, max_in_flight=2,
            retry_after_seconds=0.25,
        ) as svc:
            handle = svc.register_pattern(A)
            svc.submit(handle, A.data, np.ones(A.n))
            svc.submit(handle, A.data, np.ones(A.n))
            with pytest.raises(ServiceOverloadedError) as excinfo:
                svc.submit(handle, A.data, np.ones(A.n))
            assert excinfo.value.retry_after == 0.25
            assert svc.admission.in_flight == 2

    def test_slots_release_after_completion(self):
        A = laplacian_2d(6, shift=0.1)
        with _service(max_in_flight=4, window_seconds=0.0) as svc:
            handle = svc.register_pattern(A)
            futures = [svc.submit(handle, A.data, np.ones(A.n)) for _ in range(4)]
            for f in futures:
                f.result(timeout=30)
            svc.flush(timeout=10)
            assert svc.admission.in_flight == 0


class TestEviction:
    def test_explicit_eviction_invalidates_handles(self):
        A = laplacian_2d(7, shift=0.1)
        with _service() as svc:
            handle = svc.register_pattern(A)
            assert svc.evict(handle)
            assert not svc.evict(handle)  # idempotent
            with pytest.raises(PatternEvictedError):
                svc.solve(handle, A.data, np.ones(A.n))

    def test_eviction_then_reregistration_is_warm(self, monkeypatch, tmp_path):
        """The disk cache makes evict → re-register a zero-recompile path."""
        monkeypatch.setenv("REPRO_SYMPILER_CACHE", str(tmp_path))
        # A (pattern, options) pair no other test compiles: the first
        # registration must actually generate code (the in-memory artifact
        # cache is process-wide) for the cold/warm contrast to be real.
        A = laplacian_2d(11, shift=0.3)
        with _service() as svc:
            handle = svc.register_pattern(A)
            assert not handle.warm  # fresh cache dir: the compile generated code
            assert svc.evict(handle)
            before = disk_cache_stats().as_dict()
            handle2 = svc.register_pattern(A)
            after = disk_cache_stats().as_dict()
            assert handle2.warm
            assert after["py_writes"] == before["py_writes"]
            assert after["compiles"] == before["compiles"]
            # The python backend reloaded its persisted modules from disk.
            assert after["py_reuses"] > before["py_reuses"]
            # And the fresh handle solves correctly.
            x = svc.solve(handle2, A.data, np.ones(A.n))
            assert np.isfinite(x).all()

    def test_lru_budget_evicts_oldest_pattern(self):
        with _service(max_patterns=2) as svc:
            h1 = svc.register_pattern(laplacian_2d(6, shift=0.1))
            h2 = svc.register_pattern(laplacian_2d(7, shift=0.1))
            h3 = svc.register_pattern(laplacian_2d(8, shift=0.1))
            assert svc.metrics.count("patterns_evicted") == 1
            with pytest.raises(PatternEvictedError):
                A = laplacian_2d(6, shift=0.1)
                svc.solve(h1, A.data, np.ones(A.n))
            for h, side in ((h2, 7), (h3, 8)):
                A = laplacian_2d(side, shift=0.1)
                assert np.isfinite(svc.solve(h, A.data, np.ones(A.n))).all()

    def test_solving_touches_the_lru_order(self):
        with _service(max_patterns=2, coalesce=False) as svc:
            h1 = svc.register_pattern(laplacian_2d(6, shift=0.1))
            svc.register_pattern(laplacian_2d(7, shift=0.1))
            A1 = laplacian_2d(6, shift=0.1)
            svc.solve(h1, A1.data, np.ones(A1.n))  # h1 becomes most recent
            svc.register_pattern(laplacian_2d(8, shift=0.1))
            # h2 (least recently used) fell out; h1 survived.
            assert np.isfinite(svc.solve(h1, A1.data, np.ones(A1.n))).all()


class TestMetricsAndStats:
    def test_stats_snapshot_shape(self):
        A = laplacian_2d(7, shift=0.1)
        with _service(window_seconds=0.02, max_batch=8) as svc:
            handle = svc.register_pattern(A)
            futures = [
                svc.submit(handle, A.data * (1 + 0.1 * i), np.ones(A.n))
                for i in range(6)
            ]
            for f in futures:
                f.result(timeout=30)
            svc.flush(timeout=10)
            stats = svc.stats()
        assert stats["registered_patterns"] == 1
        assert stats["solves"] == 6
        assert stats["counters"]["solves_ok"] == 6
        assert stats["coalescing_ratio"] >= 1.0
        assert sum(
            int(k) * v for k, v in stats["batch_size_histogram"].items()
        ) == 6
        latency = stats["latency"]
        assert latency["count"] == 6
        assert latency["p50_seconds"] <= latency["p95_seconds"]
        assert stats["artifact_cache"]["pinned"] > 0
        assert handle.handle_id in stats["patterns"]

    def test_rejections_are_counted(self):
        A = laplacian_2d(6, shift=0.1)
        with _service(window_seconds=60.0, max_batch=64, max_in_flight=1) as svc:
            handle = svc.register_pattern(A)
            svc.submit(handle, A.data, np.ones(A.n))
            with pytest.raises(ServiceOverloadedError):
                svc.submit(handle, A.data, np.ones(A.n))
            assert svc.metrics.count("rejected") == 1

    def test_percentile_helper(self):
        assert percentile([], 95.0) == 0.0
        assert percentile([3.0], 50.0) == 3.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            percentile([1.0], 200.0)

    def test_metrics_thread_safety(self):
        metrics = ServiceMetrics()

        def bump():
            for _ in range(500):
                metrics.incr("solves_ok")
                metrics.observe_latency(0.001)

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.count("solves_ok") == 4000
        assert metrics.snapshot()["latency"]["count"] == 4000


class TestCoalescerUnit:
    def test_window_flush_without_reaching_max_batch(self):
        dispatched = []
        done = threading.Event()

        def dispatch(entry, batch):
            dispatched.append((entry, list(batch)))
            done.set()

        coalescer = Coalescer(dispatch, window_seconds=0.01, max_batch=100)
        coalescer.offer("k", "entry", "r1")
        coalescer.offer("k", "entry", "r2")
        assert done.wait(timeout=5)
        coalescer.close()
        assert dispatched == [("entry", ["r1", "r2"])]

    def test_max_batch_flushes_immediately(self):
        batches = []
        hit = threading.Event()

        def dispatch(entry, batch):
            batches.append(len(batch))
            if len(batches) >= 2:
                hit.set()

        coalescer = Coalescer(dispatch, window_seconds=30.0, max_batch=3)
        for i in range(6):
            coalescer.offer("k", "entry", f"r{i}")
        assert hit.wait(timeout=5)
        coalescer.close()
        assert batches == [3, 3]

    def test_dispatch_exception_fails_only_that_batch(self):
        from concurrent.futures import Future

        class Request:
            def __init__(self):
                self.future = Future()

        calls = []

        def dispatch(entry, batch):
            calls.append(len(batch))
            if len(calls) == 1:
                raise RuntimeError("boom")
            for r in batch:
                r.future.set_result("ok")

        coalescer = Coalescer(dispatch, window_seconds=0.0, max_batch=1)
        first, second = Request(), Request()
        coalescer.offer("k", "entry", first)
        with pytest.raises(RuntimeError, match="boom"):
            first.future.result(timeout=5)
        coalescer.offer("k", "entry", second)
        assert second.future.result(timeout=5) == "ok"
        coalescer.close()

    def test_close_drains_pending_requests(self):
        dispatched = []
        coalescer = Coalescer(
            lambda entry, batch: dispatched.extend(batch),
            window_seconds=60.0,
            max_batch=100,
        )
        for i in range(5):
            coalescer.offer("k", "entry", i)
        coalescer.close()
        assert sorted(dispatched) == [0, 1, 2, 3, 4]
        with pytest.raises(RuntimeError):
            coalescer.offer("k", "entry", 99)


class TestConcurrentTraffic:
    def test_many_threads_same_pattern_all_solve_correctly(self):
        A = fem_stencil_2d(7, shift=0.3)
        ref = SparseLinearSolver(
            A, ordering="natural", options=SympilerOptions(enable_vs_block=False)
        )
        base = ref.solve(np.ones(A.n))
        results = {}
        errors = []
        with _service(window_seconds=0.005, max_batch=8, max_in_flight=128) as svc:
            handle = svc.register_pattern(A)

            def drive(worker):
                try:
                    scale = 1.0 + 0.01 * worker
                    x = svc.solve(handle, A.data * scale, np.ones(A.n), timeout=30)
                    results[worker] = x * scale
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(exc)

            threads = [threading.Thread(target=drive, args=(w,)) for w in range(16)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        assert not errors
        assert len(results) == 16
        for x in results.values():
            assert np.allclose(x, base, atol=1e-8)

    def test_sustained_load_recompiles_nothing(self):
        """The amortization invariant the serving layer exists for."""
        A = laplacian_2d(8, shift=0.1)
        with _service(window_seconds=0.002, max_batch=8) as svc:
            handle = svc.register_pattern(A)
            svc.solve(handle, A.data, np.ones(A.n))  # warm-up
            disk_before = disk_cache_stats().as_dict()
            cache = svc.stats()["artifact_cache"]
            misses_before = cache["misses"]
            futures = [
                svc.submit(handle, A.data * (1 + 0.01 * i), np.ones(A.n))
                for i in range(20)
            ]
            for f in futures:
                f.result(timeout=30)
            disk_after = disk_cache_stats().as_dict()
            cache_after = svc.stats()["artifact_cache"]
        assert disk_after["compiles"] == disk_before["compiles"]
        assert disk_after["py_writes"] == disk_before["py_writes"]
        assert cache_after["misses"] == misses_before


class TestCancellation:
    def test_cancelled_future_does_not_poison_its_batchmates(self):
        A = laplacian_2d(7, shift=0.1)
        with _service(window_seconds=0.1, max_batch=8) as svc:
            handle = svc.register_pattern(A)
            doomed = svc.submit(handle, A.data, np.ones(A.n))
            survivor = svc.submit(handle, A.data * 2.0, np.ones(A.n))
            assert doomed.cancel()  # still queued: cancellation must succeed
            x = survivor.result(timeout=30)
            assert np.isfinite(x).all()
            assert doomed.cancelled()
            svc.flush(timeout=10)
            assert svc.metrics.count("solves_cancelled") == 1
            assert svc.metrics.count("solves_ok") == 1
            # The cancelled request's admission slot was still released.
            assert svc.admission.in_flight == 0


class TestPinHygiene:
    def test_close_releases_pins_from_the_shared_cache(self):
        """Short-lived services must not leak pins into the shared cache."""
        A = laplacian_2d(10, shift=0.4)
        svc = _service()
        handle = svc.register_pattern(A)
        cache = svc._entries[handle.key].batched.solver.artifact_cache
        pinned_before_close = cache.pinned_count
        assert pinned_before_close >= 3  # factorization + two trisolves
        svc.close()
        assert cache.pinned_count <= pinned_before_close - 3

    def test_shared_artifacts_survive_sibling_service_eviction(self):
        """Refcounted pins: service B keeps its artifacts when A evicts."""
        A = laplacian_2d(10, shift=0.5)
        svc_a = _service()
        svc_b = _service()
        try:
            handle_a = svc_a.register_pattern(A)
            handle_b = svc_b.register_pattern(A)  # same artifacts, own pins
            cache = svc_b._entries[handle_b.key].batched.solver.artifact_cache
            artifacts = svc_b._entries[handle_b.key].batched.solver.compiled_artifacts
            svc_a.evict(handle_a)
            # B's artifacts are still resident and still pinned.
            for artifact in artifacts:
                assert cache.keys_for(artifact), "artifact dropped while pinned"
            x = svc_b.solve(handle_b, A.data, np.ones(A.n), timeout=30)
            assert np.isfinite(x).all()
        finally:
            svc_a.close()
            svc_b.close()


class TestServiceLifecycle:
    def test_close_is_idempotent_and_rejects_new_work(self):
        A = laplacian_2d(6, shift=0.1)
        svc = _service()
        handle = svc.register_pattern(A)
        svc.close()
        svc.close()
        with pytest.raises(ServiceClosedError):
            svc.submit(handle, A.data, np.ones(A.n))

    def test_context_manager_closes(self):
        with _service() as svc:
            pass
        with pytest.raises(ServiceClosedError):
            svc.register_pattern(laplacian_2d(6, shift=0.1))
