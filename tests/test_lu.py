"""End-to-end tests of the LU kernel (symbolic, reference, backends, solver)."""

import warnings

import numpy as np
import pytest
import scipy.sparse.linalg

from repro.compiler.cache import ArtifactCache
from repro.compiler.codegen.c_backend import CGeneratedModule, c_compiler_available
from repro.compiler.codegen.python_backend import GeneratedModule
from repro.compiler.options import SympilerOptions
from repro.compiler.sympiler import Sympiler
from repro.kernels.dense import SingularMatrixError
from repro.kernels.lu import lu_left_looking
from repro.solvers.linear_solver import SparseLinearSolver
from repro.solvers.newton import newton_raphson_fixed_pattern
from repro.sparse.csc import CSCMatrix
from repro.sparse.generators import unsymmetric_diag_dominant
from repro.sparse.utils import is_symmetric_pattern
from repro.symbolic.etree import column_etree, elimination_tree
from repro.symbolic.inspector import LUInspectionResult, LUInspector

needs_cc = pytest.mark.skipif(
    not (c_compiler_available("cc") or c_compiler_available("gcc")),
    reason="no C compiler available",
)


def _c_options(**overrides):
    compiler = "cc" if c_compiler_available("cc") else "gcc"
    return SympilerOptions(backend="c", c_compiler=compiler, **overrides)


def _fresh_sympiler(options=None):
    return Sympiler(options, cache=ArtifactCache())


def _jacobian(n=50, seed=7):
    return unsymmetric_diag_dominant(n, seed=seed)


def _dense_lu_nopivot(dense):
    """Dense LU without pivoting — the structural/numerical oracle."""
    n = dense.shape[0]
    U = dense.astype(np.float64).copy()
    L = np.eye(n)
    for k in range(n):
        L[k + 1 :, k] = U[k + 1 :, k] / U[k, k]
        U[k + 1 :, :] -= np.outer(L[k + 1 :, k], U[k, :])
        U[k + 1 :, k] = 0.0
    return L, np.triu(U)


class TestSymbolicLU:
    def test_column_etree_matches_etree_of_ata(self):
        A = _jacobian(40, seed=1)
        S = A.to_scipy()
        ata = CSCMatrix.from_scipy((S.T @ S).tocsc())
        np.testing.assert_array_equal(column_etree(A), elimination_tree(ata))

    def test_predicted_patterns_cover_dense_factors(self):
        A = _jacobian(45, seed=2)
        insp = LUInspector().inspect(A)
        L_ref, U_ref = _dense_lu_nopivot(A.to_dense())
        # Every numeric nonzero of the no-pivot factors lies inside the
        # predicted pattern (the prediction is exact up to cancellation).
        lp = insp.l_pattern_matrix()
        up = insp.u_pattern_matrix()
        l_pred = np.zeros_like(L_ref, dtype=bool)
        u_pred = np.zeros_like(U_ref, dtype=bool)
        for j in range(A.n):
            l_pred[lp.col_rows(j), j] = True
            u_pred[up.col_rows(j), j] = True
        assert np.all(l_pred[np.abs(L_ref) > 1e-12])
        assert np.all(u_pred[np.abs(U_ref) > 1e-12])

    def test_inspection_shapes_and_sets(self):
        A = _jacobian(30, seed=3)
        insp = LUInspector().inspect(A)
        assert isinstance(insp, LUInspectionResult)
        assert insp.factor_nnz == insp.l_nnz + insp.u_nnz
        # Unit diagonal first in L, pivot last in U, for every column.
        np.testing.assert_array_equal(
            insp.l_indices[insp.l_indptr[:-1]], np.arange(A.n)
        )
        np.testing.assert_array_equal(
            insp.u_indices[insp.u_indptr[1:] - 1], np.arange(A.n)
        )
        assert insp.prune_set().strategy == "dfs-reach"
        assert insp.block_set().payload.n_columns == A.n
        assert insp.symbolic_seconds >= 0.0

    def test_rejects_non_square(self):
        A = CSCMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(ValueError, match="square"):
            LUInspector().inspect(A)


class TestReferenceKernel:
    def test_matches_dense_lu_without_pivoting(self):
        A = _jacobian(40, seed=4)
        fac = lu_left_looking(A)
        L_ref, U_ref = _dense_lu_nopivot(A.to_dense())
        np.testing.assert_allclose(fac.L.to_dense(), L_ref, atol=1e-9)
        np.testing.assert_allclose(fac.U.to_dense(), U_ref, atol=1e-9)

    def test_reconstruction_and_unit_diagonal(self):
        A = _jacobian(55, seed=5)
        fac = lu_left_looking(A)
        np.testing.assert_allclose(fac.reconstruct_dense(), A.to_dense(), atol=1e-9)
        np.testing.assert_allclose(fac.L.data[fac.L.indptr[:-1]], 1.0)
        assert fac.L.is_lower_triangular()
        assert fac.U.is_upper_triangular()

    def test_factors_solve_matches_splu(self, rng):
        A = _jacobian(60, seed=6)
        fac = lu_left_looking(A)
        b = rng.normal(size=A.n)
        x = fac.solve(b)
        x_ref = scipy.sparse.linalg.splu(A.to_scipy().tocsc()).solve(b)
        np.testing.assert_allclose(x, x_ref, atol=1e-8)

    def test_pivots_property(self):
        A = _jacobian(25, seed=8)
        fac = lu_left_looking(A)
        np.testing.assert_allclose(fac.pivots, np.diag(fac.U.to_dense()))
        assert np.all(fac.pivots != 0.0)

    def test_zero_pivot_raises(self):
        A = CSCMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(SingularMatrixError):
            lu_left_looking(A)


class TestCompiledLUPython:
    def test_matches_reference(self):
        sym = _fresh_sympiler()
        for seed in (10, 11):
            A = _jacobian(48, seed=seed)
            compiled = sym.compile("lu", A)
            fac = compiled.factorize(A)
            ref = lu_left_looking(A)
            np.testing.assert_allclose(fac.L.to_dense(), ref.L.to_dense(), atol=1e-9)
            np.testing.assert_allclose(fac.U.to_dense(), ref.U.to_dense(), atol=1e-9)

    def test_reconstruction_against_scipy_splu(self, rng):
        # Acceptance criterion: residual and ||L U - A|| within 1e-8.
        A = _jacobian(64, seed=12)
        compiled = _fresh_sympiler().compile("lu", A)
        fac = compiled.factorize(A)
        assert np.abs(fac.reconstruct_dense() - A.to_dense()).max() <= 1e-8
        b = rng.normal(size=A.n)
        x_ref = scipy.sparse.linalg.splu(A.to_scipy().tocsc()).solve(b)
        np.testing.assert_allclose(fac.solve(b), x_ref, atol=1e-8)

    def test_vi_prune_is_forced(self):
        compiled = _fresh_sympiler().compile(
            "lu", _jacobian(20, seed=13), options=SympilerOptions.baseline()
        )
        assert compiled.decisions.get("vi-prune-forced") is True
        assert "vi-prune" in compiled.applied_transformations

    def test_vs_block_defers_with_recorded_decision(self):
        compiled = _fresh_sympiler().compile("lu", _jacobian(30, seed=14))
        decision = compiled.decisions.get("vs-block")
        assert decision is not None and decision["factor_kind"] == "lu"
        assert "deferred" in decision
        assert "vs-block" not in compiled.applied_transformations

    def test_refactorization_with_new_values(self):
        A = _jacobian(36, seed=15)
        compiled = _fresh_sympiler().compile("lu", A)
        fac1 = compiled.factorize(A)
        A2 = A.copy()
        A2.data *= 3.0
        fac2 = compiled.factorize(A2)
        # L is scale invariant; U absorbs the scaling.
        np.testing.assert_allclose(fac2.L.to_dense(), fac1.L.to_dense(), atol=1e-9)
        np.testing.assert_allclose(fac2.U.to_dense(), 3.0 * fac1.U.to_dense(), atol=1e-9)

    def test_singular_matrix_raises(self):
        A = CSCMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
        compiled = _fresh_sympiler().compile("lu", A)
        with pytest.raises(ValueError, match="pivot"):
            compiled.factorize(A)

    def test_generated_source_is_numeric_only(self):
        compiled = _fresh_sympiler().compile("lu", _jacobian(24, seed=16))
        assert "Sympiler-generated lu kernel" in compiled.source
        # The U pattern and every update position are embedded constants.
        for name in ("u_indptr", "u_indices", "prune_ptr", "update_pos"):
            assert name in compiled.constants


@needs_cc
class TestCompiledLUC:
    def test_matches_python_backend(self):
        A = _jacobian(52, seed=20)
        sym = _fresh_sympiler()
        fac_c = sym.compile("lu", A, options=_c_options()).factorize(A)
        fac_py = sym.compile("lu", A, options=SympilerOptions()).factorize(A)
        np.testing.assert_allclose(fac_c.L.to_dense(), fac_py.L.to_dense(), atol=1e-12)
        np.testing.assert_allclose(fac_c.U.to_dense(), fac_py.U.to_dense(), atol=1e-12)

    def test_reconstruction_against_scipy_splu_c_backend(self, rng):
        # Acceptance criterion on the C backend as well.
        A = _jacobian(64, seed=21)
        fac = _fresh_sympiler().compile("lu", A, options=_c_options()).factorize(A)
        assert np.abs(fac.reconstruct_dense() - A.to_dense()).max() <= 1e-8
        b = rng.normal(size=A.n)
        x_ref = scipy.sparse.linalg.splu(A.to_scipy().tocsc()).solve(b)
        np.testing.assert_allclose(fac.solve(b), x_ref, atol=1e-8)

    def test_singular_matrix_returns_error(self):
        A = CSCMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
        compiled = _fresh_sympiler().compile("lu", A, options=_c_options())
        with pytest.raises(ValueError, match="pivot"):
            compiled.factorize(A)

    def test_solver_residual_c_backend(self, rng):
        A = _jacobian(70, seed=22)
        solver = SparseLinearSolver(A, method="lu", options=_c_options())
        b = rng.normal(size=A.n)
        assert solver.residual(solver.solve(b), b) <= 1e-8


class TestLUSolver:
    @pytest.mark.parametrize("ordering", ["natural", "mindeg", "rcm"])
    def test_unsymmetric_system_residual(self, ordering, rng):
        A = _jacobian(75, seed=30)
        solver = SparseLinearSolver(A, method="lu", ordering=ordering)
        b = rng.normal(size=A.n)
        x = solver.solve(b)
        assert solver.residual(x, b) <= 1e-8

    def test_solution_matches_splu(self, rng):
        A = _jacobian(66, seed=31)
        solver = SparseLinearSolver(A, method="lu")
        b = rng.normal(size=A.n)
        x_ref = scipy.sparse.linalg.splu(A.to_scipy().tocsc()).solve(b)
        np.testing.assert_allclose(solver.solve(b), x_ref, atol=1e-8)

    def test_accepts_unsymmetric_pattern(self):
        A = _jacobian(40, seed=32)
        assert not is_symmetric_pattern(A)
        solver = SparseLinearSolver(A, method="lu")
        assert solver.U is not None and solver.d is None
        assert solver.L.is_lower_triangular() and solver.U.is_upper_triangular()

    def test_registry_alias_works(self, rng):
        A = _jacobian(30, seed=33)
        solver = SparseLinearSolver(A, method="gp-lu")
        assert solver.method == "lu"  # canonicalized
        b = rng.normal(size=A.n)
        assert solver.residual(solver.solve(b), b) <= 1e-8

    def test_refactorization_reuses_kernels(self):
        A = _jacobian(44, seed=34)
        solver = SparseLinearSolver(A, method="lu")
        lookups_after_setup = solver.cache_stats.lookups
        A2 = A.copy()
        A2.data *= 2.5
        solver.factorize(A2)
        # Refactorization on the same pattern triggers no compiles at all.
        assert solver.cache_stats.lookups == lookups_after_setup
        b = np.ones(A.n)
        assert solver.residual(solver.solve(b), b) <= 1e-8

    def test_solve_many(self, rng):
        A = _jacobian(28, seed=35)
        solver = SparseLinearSolver(A, method="lu")
        B = rng.normal(size=(A.n, 3))
        X = solver.solve_many(B)
        for k in range(3):
            assert solver.residual(X[:, k], B[:, k]) <= 1e-8

    def test_newton_with_lu_jacobian(self):
        # A mildly nonlinear system whose Jacobian keeps the fixed pattern of
        # an unsymmetric diagonally dominant base matrix.
        A = _jacobian(24, seed=36)
        dense = A.to_dense()

        def residual_fn(x):
            return dense @ x + 0.01 * x**3 - 1.0

        def jacobian_fn(x):
            J = A.copy()
            # The diagonal entries absorb the nonlinear term's derivative.
            diag_positions = []
            for j in range(A.n):
                rows = J.col_rows(j)
                diag_positions.append(J.indptr[j] + int(np.searchsorted(rows, j)))
            J.data[diag_positions] += 0.03 * x**2
            return J

        result = newton_raphson_fixed_pattern(
            residual_fn, jacobian_fn, np.zeros(A.n), method="lu", tol=1e-10
        )
        assert result.converged
        assert result.factorizations >= 1
        np.testing.assert_allclose(residual_fn(result.x), 0.0, atol=1e-9)


class TestToolchainFallback:
    def test_missing_cc_falls_back_to_python_with_one_warning(self):
        A = _jacobian(18, seed=40)
        options = SympilerOptions(backend="c", c_compiler="/nonexistent/lu-test-cc")
        sym = _fresh_sympiler()
        with pytest.warns(RuntimeWarning, match="falling back"):
            compiled = sym.compile("lu", A, options=options)
        assert isinstance(compiled.module, GeneratedModule)  # python backend
        assert not isinstance(compiled.module, CGeneratedModule)
        fac = compiled.factorize(A)
        np.testing.assert_allclose(fac.reconstruct_dense(), A.to_dense(), atol=1e-9)
        # The warning fires once per missing compiler, not once per compile.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sym.compile("cholesky", unsymmetric_diag_dominant(1, seed=0), options=options)
        assert not [w for w in caught if "falling back" in str(w.message)]

    def test_repro_cc_env_controls_default_compiler(self, monkeypatch):
        monkeypatch.setenv("REPRO_CC", "/nonexistent/env-cc")
        options = SympilerOptions(backend="c")
        assert options.c_compiler == "/nonexistent/env-cc"
        A = _jacobian(12, seed=41)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            compiled = _fresh_sympiler().compile("lu", A, options=options)
        assert isinstance(compiled.module, GeneratedModule)
        np.testing.assert_allclose(
            compiled.factorize(A).reconstruct_dense(), A.to_dense(), atol=1e-9
        )
