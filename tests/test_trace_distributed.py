"""Distributed tracing, structured events, and health across process scales.

Covers the cross-process span-context contract (client headers → server
``attach_remote`` → merged Chrome trace), the bounded structured event log,
the ``health``/``trace``/``ping`` wire verbs, and the Prometheus relabeling
edge cases (quote/backslash escaping, pre-existing labels).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import observe
from repro.compiler.options import SympilerOptions
from repro.observe.events import EventLog
from repro.service import ServiceClient, SolverService, serve_background
from repro.solvers.linear_solver import SparseLinearSolver
from repro.sparse.generators import fem_stencil_2d, laplacian_2d


@pytest.fixture()
def tracing():
    """Enable tracing for one test; restore the disabled default afterwards."""
    observe.enable()
    observe.reset()
    yield observe.get_tracer()
    observe.disable()
    observe.reset()


@pytest.fixture()
def served():
    service = SolverService(
        options=SympilerOptions(enable_vs_block=False),
        window_seconds=0.005,
        max_batch=8,
    )
    server, thread = serve_background(service)
    yield server.server_address, service
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    service.close()


def _solve_once(client, A):
    handle = client.register_pattern(A)
    rhs = np.linspace(0.5, 1.5, A.n)
    x = client.solve(handle, A.data, rhs)
    return handle, rhs, x


class TestWireTraceHeaders:
    def test_empty_when_disabled(self):
        observe.disable()
        assert observe.wire_trace_headers() == {}

    def test_empty_outside_any_span(self, tracing):
        assert observe.wire_trace_headers() == {}

    def test_carries_current_context_inside_span(self, tracing):
        with observe.span("request"):
            headers = observe.wire_trace_headers()
        assert set(headers) == {"trace_id", "parent_id"}
        assert isinstance(headers["trace_id"], int)
        assert isinstance(headers["parent_id"], int)

    def test_attach_remote_parents_new_spans(self, tracing):
        with observe.attach_remote(7001, 7002):
            with observe.span("serve"):
                pass
        serve = [sp for sp in tracing.spans() if sp.name == "serve"][0]
        assert serve.trace_id == 7001
        assert serve.parent_id == 7002

    def test_attach_remote_noop_on_missing_or_bad_ids(self, tracing):
        with observe.attach_remote(None, None):
            with observe.span("solo"):
                pass
        solo = [sp for sp in tracing.spans() if sp.name == "solo"][0]
        assert solo.parent_id is None


class TestWireTracePropagation:
    def test_shard_side_spans_share_client_trace_id(self, served, tracing):
        address, _ = served
        A = laplacian_2d(8, shift=0.1)
        with ServiceClient(address) as client:
            _solve_once(client, A)
        spans = tracing.spans()
        client_solve = [sp for sp in spans if sp.name == "wire-solve"]
        serves = [sp for sp in spans if sp.name == "serve"]
        assert client_solve and serves
        trace_id = client_solve[0].trace_id
        # The server-side serve span joined the client's trace through the
        # wire headers (not through thread-local inheritance: it ran on the
        # server's handler thread).
        solve_serves = [sp for sp in serves if sp.trace_id == trace_id]
        assert solve_serves
        assert any(sp.parent_id == client_solve[0].span_id for sp in solve_serves)

    def test_nesting_survives_coalescer_dispatch(self, tracing):
        service = SolverService(
            options=SympilerOptions(enable_vs_block=False),
            window_seconds=0.005,
            max_batch=8,
        )
        try:
            A = laplacian_2d(8, shift=0.1)
            handle = service.register_pattern(A)
            with observe.span("request"):
                service.solve(handle, A.data, np.linspace(0.5, 1.5, A.n))
        finally:
            service.close()
        spans = tracing.spans()
        request = [sp for sp in spans if sp.name == "request"][0]
        # The numeric solve ran on the coalescer's dispatch thread, yet its
        # spans stayed inside the caller's trace.
        joined = [
            sp
            for sp in spans
            if sp.trace_id == request.trace_id and sp.name != "request"
        ]
        assert joined, "dispatch-side spans lost the submitting trace"

    def test_v1_protocol_round_trip_with_tracing_enabled(self, served, tracing):
        address, _ = served
        A = fem_stencil_2d(6, shift=0.2)
        ref = SparseLinearSolver(
            A, ordering="natural", options=SympilerOptions(enable_vs_block=False)
        )
        with ServiceClient(address, protocol=1) as client:
            _, rhs, x = _solve_once(client, A)
        assert np.allclose(x, ref.solve(rhs), atol=1e-8)

    def test_disabled_tracing_sends_no_trace_keys(self, served):
        observe.disable()
        address, _ = served
        A = laplacian_2d(6, shift=0.1)
        with ServiceClient(address) as client:
            _solve_once(client, A)
            payload = client.trace_spans()
        assert payload["enabled"] is False
        assert payload["spans"] == []


class TestTraceVerb:
    def test_drain_is_destructive(self, served, tracing):
        address, _ = served
        A = laplacian_2d(6, shift=0.1)
        with ServiceClient(address) as client:
            _solve_once(client, A)
            payload = client.trace_spans(drain=True)
            assert payload["enabled"] is True
            assert payload["spans"]
            assert all(
                {"name", "trace_id", "span_id", "start"} <= set(sp)
                for sp in payload["spans"]
            )
            again = client.trace_spans(drain=True)
        # The solve's spans left with the first drain; the only residue is
        # the serve span wrapping that drain request itself.
        assert all(
            sp["name"] == "serve" and sp["attrs"].get("op") == "trace"
            for sp in again["spans"]
        )

    def test_peek_keeps_spans(self, served, tracing):
        address, _ = served
        A = laplacian_2d(6, shift=0.1)
        with ServiceClient(address) as client:
            _solve_once(client, A)
            first = client.trace_spans(drain=False)
            second = client.trace_spans(drain=False)
        assert first["spans"] and second["spans"]


class TestPingAndHealth:
    def test_ping_info_carries_server_clocks(self, served):
        address, _ = served
        with ServiceClient(address) as client:
            info = client.ping_info()
        assert info["pong"] is True
        assert "server_wall_time" in info and "server_monotonic" in info
        assert info["rtt_seconds"] >= 0.0

    def test_clock_offset_is_small_in_one_host(self, served):
        address, _ = served
        with ServiceClient(address) as client:
            offset = client.estimate_clock_offset(samples=3)
        # Same machine, same clock: the NTP-style estimate must land within
        # the round-trip noise, nowhere near a real inter-host skew.
        assert abs(offset) < 1.0

    def test_health_at_service_and_client_scale(self, served):
        address, service = served
        A = laplacian_2d(6, shift=0.1)
        local = service.health()
        assert local["status"] == "ok"
        assert local["uptime_seconds"] >= 0.0
        with ServiceClient(address) as client:
            client.register_pattern(A)
            doc = client.health()
        assert doc["status"] == "ok"
        assert doc["registered_patterns"] >= 1
        assert doc["wire_version"] in (1, 2)
        assert "pid" in doc and "tracing_enabled" in doc

    def test_closed_service_reports_closed(self):
        service = SolverService(options=SympilerOptions(enable_vs_block=False))
        service.close()
        assert service.health()["status"] == "closed"


class TestEventLog:
    def test_ring_is_bounded(self):
        log = EventLog(max_events=4)
        for i in range(10):
            log.emit("tick", i=i)
        assert len(log) == 4
        assert [e.attrs["i"] for e in log.events()] == [6, 7, 8, 9]

    def test_jsonl_sink_writes_one_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(max_events=8, jsonl_path=str(path))
        log.emit("shard_spawn", slot=0, pid=123)
        log.emit("failover", slot=1)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "shard_spawn"
        assert first["attrs"] == {"slot": 0, "pid": 123}

    def test_emit_never_raises_on_unserializable_attrs(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(max_events=8, jsonl_path=str(path))
        log.emit("odd", payload=object())
        assert len(log) == 1

    def test_service_lifecycle_edges_emit(self):
        log = observe.get_event_log()
        log.clear()
        service = SolverService(options=SympilerOptions(enable_vs_block=False))
        try:
            A = laplacian_2d(6, shift=0.1)
            handle = service.register_pattern(A)
            service.evict(handle)
        finally:
            service.close()
            kinds = log.kinds()
            log.clear()
        assert "compile_cold" in kinds or "compile_warm" in kinds
        assert "pattern_evicted" in kinds


class TestRelabelEscaping:
    def test_quotes_and_backslashes_are_escaped(self):
        text = 'metric 1.0\n'
        out = observe.relabel_prometheus_text(text, path='C:\\x "y"')
        assert 'path="C:\\\\x \\"y\\""' in out

    def test_existing_labels_survive_and_win(self):
        text = 'm{shard="3",op="solve"} 2.0\n'
        out = observe.relabel_prometheus_text(text, shard="9", zone="eu")
        line = [l for l in out.splitlines() if l.startswith("m{")][0]
        assert 'shard="3"' in line and 'shard="9"' not in line
        assert 'zone="eu"' in line and 'op="solve"' in line

    def test_quoted_value_containing_braces_and_equals(self):
        text = 'm{msg="a=b}c"} 1\n'
        out = observe.relabel_prometheus_text(text, shard="0")
        line = [l for l in out.splitlines() if l.startswith("m{")][0]
        assert 'msg="a=b}c"' in line and 'shard="0"' in line

    def test_malformed_line_passes_through(self):
        text = 'broken{unterminated="x 1\n'
        out = observe.relabel_prometheus_text(text, shard="0")
        assert 'broken{unterminated="x 1' in out


class TestFleetDistributedTrace:
    def test_merged_trace_spans_multiple_processes(self, tmp_path, tracing):
        import os

        from repro.service.fleet import ShardFleet

        mats = [laplacian_2d(8, shift=0.1), fem_stencil_2d(7, shift=0.2)]
        with ShardFleet(2, cache_dir=tmp_path, trace=True) as fleet:
            handles = [fleet.register_pattern(A) for A in mats]
            futures = []
            for i in range(8):
                A = mats[i % 2]
                rhs = np.sin(np.arange(A.n, dtype=np.float64) + i)
                futures.append(fleet.submit(handles[i % 2], A.data, rhs))
            for future in futures:
                assert np.isfinite(future.result(timeout=60)).all()
            health = fleet.health()
            doc = fleet.chrome_trace()
        assert health["status"] == "ok"
        assert health["shards_healthy"] == 2
        local_pid = os.getpid()
        span_events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        shard_pids = {e["pid"] for e in span_events if e["pid"] != local_pid}
        assert len(shard_pids) >= 2
        client_traces = {
            e["args"]["trace_id"]
            for e in span_events
            if e["pid"] == local_pid and e["name"] == "wire-submit"
        }
        shard_traces = {
            e["args"]["trace_id"]
            for e in span_events
            if e["pid"] != local_pid
        }
        # Client request spans and shard-side serve spans joined on trace id.
        assert client_traces & shard_traces
