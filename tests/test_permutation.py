"""Tests for permutations."""

import numpy as np
import pytest

from repro.sparse.csc import CSCMatrix
from repro.sparse.permutation import Permutation


def test_identity():
    p = Permutation.identity(5)
    assert p.is_identity()
    x = np.arange(5.0)
    np.testing.assert_array_equal(p.apply_vec(x), x)


def test_validation_rejects_non_bijections():
    with pytest.raises(ValueError):
        Permutation(np.array([0, 0, 1]))
    with pytest.raises(ValueError):
        Permutation(np.array([0, 3, 1]))
    with pytest.raises(ValueError):
        Permutation(np.array([[0, 1]]))


def test_apply_and_inverse_roundtrip(rng):
    perm = Permutation(rng.permutation(8))
    x = rng.normal(size=8)
    np.testing.assert_allclose(perm.apply_inverse_vec(perm.apply_vec(x)), x)
    np.testing.assert_allclose(perm.apply_vec(perm.apply_inverse_vec(x)), x)


def test_apply_vec_shape_check():
    perm = Permutation(np.array([1, 0]))
    with pytest.raises(ValueError):
        perm.apply_vec(np.ones(3))
    with pytest.raises(ValueError):
        perm.apply_inverse_vec(np.ones(3))


def test_from_inverse():
    perm = Permutation(np.array([2, 0, 1]))
    rebuilt = Permutation.from_inverse(perm.inv)
    assert rebuilt == perm


def test_inverse_and_compose(rng):
    p = Permutation(rng.permutation(6))
    q = Permutation(rng.permutation(6))
    identity = p.compose(p.inverse())
    assert identity.is_identity() or np.array_equal(
        identity.perm, np.arange(6)
    )
    x = rng.normal(size=6)
    # compose(q) applies q first, then p.
    np.testing.assert_allclose(p.compose(q).apply_vec(x), p.apply_vec(q.apply_vec(x)))


def test_compose_size_mismatch():
    with pytest.raises(ValueError):
        Permutation(np.array([0, 1])).compose(Permutation(np.array([0, 1, 2])))


def test_symmetric_permute_matches_dense(rng):
    dense = rng.normal(size=(6, 6))
    dense = dense + dense.T + 10 * np.eye(6)
    A = CSCMatrix.from_dense(dense)
    p = Permutation(rng.permutation(6))
    B = p.symmetric_permute(A)
    np.testing.assert_allclose(B.to_dense(), dense[np.ix_(p.perm, p.perm)])


def test_permute_rows_and_cols(rng):
    dense = rng.normal(size=(5, 5))
    A = CSCMatrix.from_dense(dense)
    p = Permutation(rng.permutation(5))
    np.testing.assert_allclose(p.permute_rows(A).to_dense(), dense[p.perm, :])
    np.testing.assert_allclose(p.permute_cols(A).to_dense(), dense[:, p.perm])


def test_symmetric_permute_requires_square():
    p = Permutation(np.array([0, 1]))
    with pytest.raises(ValueError):
        p.symmetric_permute(CSCMatrix.from_dense(np.ones((2, 3))))


def test_size_mismatch_on_matrix_application():
    p = Permutation(np.array([0, 1, 2]))
    A = CSCMatrix.identity(2)
    with pytest.raises(ValueError):
        p.symmetric_permute(A)
    with pytest.raises(ValueError):
        p.permute_rows(A)
    with pytest.raises(ValueError):
        p.permute_cols(A)


def test_equality_and_repr():
    a = Permutation(np.array([1, 0, 2]))
    b = Permutation(np.array([1, 0, 2]))
    c = Permutation(np.array([2, 1, 0]))
    assert a == b
    assert a != c
    assert "Permutation" in repr(a)
