"""Tests for the CSC container."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix


@pytest.fixture()
def small():
    dense = np.array(
        [
            [4.0, 0.0, -1.0, 0.0],
            [0.0, 3.0, 0.0, 0.0],
            [-1.0, 0.0, 5.0, 2.0],
            [0.0, 0.0, 2.0, 6.0],
        ]
    )
    return CSCMatrix.from_dense(dense), dense


def test_from_dense_roundtrip(small):
    A, dense = small
    np.testing.assert_allclose(A.to_dense(), dense)


def test_shape_nnz_density(small):
    A, dense = small
    assert A.shape == (4, 4)
    assert A.nnz == int(np.count_nonzero(dense))
    assert A.density() == pytest.approx(A.nnz / 16.0)


def test_n_property_requires_square():
    A = CSCMatrix.from_dense(np.ones((2, 3)))
    with pytest.raises(ValueError):
        _ = A.n
    assert not A.is_square()


def test_identity_and_empty():
    eye = CSCMatrix.identity(5)
    np.testing.assert_allclose(eye.to_dense(), np.eye(5))
    empty = CSCMatrix.empty(3, 2)
    assert empty.nnz == 0
    assert empty.shape == (3, 2)


def test_from_pattern_constant_fill():
    A = CSCMatrix.from_pattern(3, 3, [0, 1, 2, 3], [0, 1, 2], fill_value=7.0)
    np.testing.assert_allclose(A.to_dense(), np.diag([7.0, 7.0, 7.0]))


def test_from_coo_sorts_and_sums():
    coo = COOMatrix(3, 3, [2, 0, 2], [0, 1, 0], [1.0, 3.0, 2.0])
    A = CSCMatrix.from_coo(coo)
    assert A.get(2, 0) == pytest.approx(3.0)
    assert A.get(0, 1) == pytest.approx(3.0)
    # Row indices must be sorted inside each column.
    A.validate()


def test_from_scipy_and_to_scipy(small):
    A, dense = small
    S = sp.csc_matrix(dense)
    B = CSCMatrix.from_scipy(S)
    np.testing.assert_allclose(B.to_dense(), dense)
    np.testing.assert_allclose(B.to_scipy().toarray(), dense)


def test_validation_rejects_bad_indptr():
    with pytest.raises(ValueError):
        CSCMatrix(2, 2, [0, 1], [0], [1.0])  # wrong indptr length
    with pytest.raises(ValueError):
        CSCMatrix(2, 2, [1, 1, 1], [], [])  # indptr[0] != 0
    with pytest.raises(ValueError):
        CSCMatrix(2, 2, [0, 2, 1], [0, 1], [1.0, 1.0])  # decreasing


def test_validation_rejects_bad_indices():
    with pytest.raises(ValueError):
        CSCMatrix(2, 2, [0, 1, 2], [0, 5], [1.0, 1.0])  # out of range
    with pytest.raises(ValueError):
        CSCMatrix(2, 2, [0, 2, 2], [1, 0], [1.0, 1.0])  # unsorted column
    with pytest.raises(ValueError):
        CSCMatrix(2, 2, [0, 2, 2], [0, 0], [1.0, 1.0])  # duplicate row


def test_col_access(small):
    A, dense = small
    rows = A.col_rows(2)
    vals = A.col_values(2)
    np.testing.assert_array_equal(rows, [0, 2, 3])
    np.testing.assert_allclose(vals, [-1.0, 5.0, 2.0])
    assert A.col_nnz(2) == 3
    with pytest.raises(IndexError):
        A.col_rows(10)


def test_iter_cols(small):
    A, dense = small
    cols = list(A.iter_cols())
    assert len(cols) == 4
    j, rows, vals = cols[3]
    assert j == 3
    np.testing.assert_array_equal(rows, [2, 3])


def test_get_and_diagonal(small):
    A, dense = small
    assert A.get(0, 2) == pytest.approx(-1.0)
    assert A.get(1, 2) == 0.0
    np.testing.assert_allclose(A.diagonal(), np.diag(dense))


def test_transpose_matches_dense(small):
    A, dense = small
    np.testing.assert_allclose(A.transpose().to_dense(), dense.T)


def test_transpose_rectangular():
    dense = np.array([[1.0, 0.0, 2.0], [0.0, 3.0, 0.0]])
    A = CSCMatrix.from_dense(dense)
    T = A.transpose()
    assert T.shape == (3, 2)
    np.testing.assert_allclose(T.to_dense(), dense.T)
    T.validate()


def test_matvec_and_rmatvec(small, rng):
    A, dense = small
    x = rng.normal(size=4)
    np.testing.assert_allclose(A.matvec(x), dense @ x)
    np.testing.assert_allclose(A.rmatvec(x), dense.T @ x)
    np.testing.assert_allclose(A @ x, dense @ x)


def test_matvec_shape_check(small):
    A, _ = small
    with pytest.raises(ValueError):
        A.matvec(np.ones(3))
    with pytest.raises(ValueError):
        A.rmatvec(np.ones(5))


def test_copy_is_deep(small):
    A, _ = small
    B = A.copy()
    B.data[0] = 99.0
    assert A.data[0] != 99.0


def test_prune_drops_small_entries():
    dense = np.array([[1.0, 1e-14], [0.0, 2.0]])
    A = CSCMatrix.from_dense(dense)
    pruned = A.prune(drop_tol=1e-12)
    assert pruned.nnz == 2
    assert pruned.get(0, 1) == 0.0


def test_add_and_scale(small):
    A, dense = small
    np.testing.assert_allclose(A.add(A).to_dense(), 2 * dense)
    np.testing.assert_allclose(A.scale(-0.5).to_dense(), -0.5 * dense)
    with pytest.raises(ValueError):
        A.add(CSCMatrix.identity(3))


def test_pattern_equal_and_allclose(small):
    A, dense = small
    B = A.copy()
    assert A.pattern_equal(B)
    assert A.allclose(B)
    B.data[0] += 1.0
    assert A.pattern_equal(B)
    assert not A.allclose(B)
    assert not A.allclose(CSCMatrix.identity(4))


def test_triangular_predicates():
    L = CSCMatrix.from_dense(np.array([[1.0, 0.0], [2.0, 3.0]]))
    U = CSCMatrix.from_dense(np.array([[1.0, 2.0], [0.0, 3.0]]))
    assert L.is_lower_triangular()
    assert not L.is_upper_triangular()
    assert U.is_upper_triangular()
    assert not U.is_lower_triangular()
    assert not L.is_lower_triangular(strict=True)
    strict = CSCMatrix.from_dense(np.array([[0.0, 0.0], [2.0, 0.0]]))
    assert strict.is_lower_triangular(strict=True)


def test_has_full_diagonal():
    full = CSCMatrix.from_dense(np.array([[1.0, 0.0], [2.0, 3.0]]))
    missing = CSCMatrix.from_dense(np.array([[0.0, 0.0], [2.0, 3.0]]))
    assert full.has_full_diagonal()
    assert not missing.has_full_diagonal()


def test_to_coo_roundtrip(small):
    A, dense = small
    np.testing.assert_allclose(A.to_coo().to_dense(), dense)


def test_to_csr_roundtrip(small):
    A, dense = small
    np.testing.assert_allclose(A.to_csr().to_dense(), dense)


def test_column_pattern_hash_distinguishes_columns(small):
    A, _ = small
    assert A.column_pattern_hash(0) != A.column_pattern_hash(1)


def test_negative_dimensions_rejected():
    with pytest.raises(ValueError):
        CSCMatrix(-1, 2, [0, 0, 0], [], [])


def test_from_dense_requires_2d():
    with pytest.raises(ValueError):
        CSCMatrix.from_dense(np.ones(4))


def test_empty_matrix_operations():
    A = CSCMatrix.empty(3, 3)
    np.testing.assert_allclose(A.matvec(np.ones(3)), np.zeros(3))
    assert A.transpose().nnz == 0
    assert A.density() == 0.0
